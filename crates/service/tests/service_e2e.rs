//! End-to-end service tests: concurrent clients over a saturated queue,
//! deterministic cache-hit accounting, cancellation, priorities, and
//! the quality-upgrade path (`UpperBound` → `Optimal`) observable
//! across requests.

use rbp_core::{CostModel, Instance};
use rbp_graph::{generate, DagBuilder};
use rbp_service::{AcceptPolicy, Event, JobOptions, JobRequest, Server, ServerConfig};
use rbp_solvers::{GreedySolver, Quality, Registry, Solution, SolveCtx, SolveError, Solver};
use std::sync::mpsc;
use std::time::Duration;

/// A test solver that holds its worker for a while, then answers with
/// greedy — deterministic occupancy for queue/cancellation scenarios.
struct Sleeper(Duration);

impl Solver for Sleeper {
    fn name(&self) -> &str {
        "sleeper"
    }
    fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
        std::thread::sleep(self.0);
        GreedySolver::new().solve(instance, ctx)
    }
}

fn registry_with_sleeper() -> Registry {
    let mut reg = Registry::with_builtins();
    reg.register("sleeper", "test: sleep <ms>, then greedy", |arg| {
        let ms: u64 = arg
            .unwrap_or("50")
            .parse()
            .map_err(|_| SolveError::BadSpec {
                spec: format!("sleeper:{}", arg.unwrap_or("")),
                reason: "sleeper takes milliseconds".into(),
            })?;
        Ok(Box::new(Sleeper(Duration::from_millis(ms))))
    });
    reg
}

fn chain_req(id: &str, n: usize, spec: &str, options: JobOptions) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        spec: spec.to_string(),
        instance: Instance::new(generate::chain(n), 2, CostModel::oneshot()),
        options,
    }
}

/// stencil(4, 2, 1) under base at R=4: a real search (greedy does not
/// meet the trivial lower bound), still subsecond in debug builds.
fn grid4_base() -> Instance {
    Instance::new(
        rbp_workloads::stencil::build(4, 2, 1).dag,
        4,
        CostModel::base(),
    )
}

fn terminal(rx: &mpsc::Receiver<Event>) -> Event {
    loop {
        let ev = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("job must reach a terminal event");
        if ev.is_terminal() {
            return ev;
        }
    }
}

#[test]
fn duplicates_hit_the_cache_without_resolving() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    });
    let mut cached_flags = Vec::new();
    for i in 0..5 {
        let rx = server
            .submit_collect(chain_req(
                &format!("d{i}"),
                7,
                "exact",
                JobOptions::default(),
            ))
            .unwrap();
        match terminal(&rx) {
            Event::Done { cached, .. } => cached_flags.push(cached),
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(cached_flags, [false, true, true, true, true]);
    let stats = server.stats();
    assert_eq!(stats.solves, 1, "one solver run serves five requests");
    assert_eq!(stats.cache.hits, 4);
    assert_eq!(stats.cache.entries, 1);
    server.shutdown();
}

#[test]
fn relabeled_instances_share_a_cache_slot() {
    // the same chain under a scrambled node numbering: refinement
    // individualizes a chain, so both submissions key identically
    let mut b = DagBuilder::new(4);
    for (u, v) in [(2, 0), (0, 3), (3, 1)] {
        b.add_edge(u, v);
    }
    let scrambled = Instance::new(b.build().unwrap(), 2, CostModel::oneshot());
    let straight = Instance::new(generate::chain(4), 2, CostModel::oneshot());
    assert_eq!(straight.canonical_key(), scrambled.canonical_key());

    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let rx = server
        .submit_collect(JobRequest {
            id: "straight".into(),
            spec: "exact".into(),
            instance: straight,
            options: JobOptions::default(),
        })
        .unwrap();
    assert!(matches!(terminal(&rx), Event::Done { cached: false, .. }));
    let rx = server
        .submit_collect(JobRequest {
            id: "scrambled".into(),
            spec: "exact".into(),
            instance: scrambled,
            options: JobOptions::default(),
        })
        .unwrap();
    assert!(matches!(terminal(&rx), Event::Done { cached: true, .. }));
    server.shutdown();
}

#[test]
fn upper_bound_upgrades_to_optimal_across_requests() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });

    // 1: a strangled budget degrades to the greedy incumbent's bound,
    // which is cached as UpperBound
    let opts = JobOptions {
        max_expansions: Some(1),
        ..JobOptions::default()
    };
    let rx = server
        .submit_collect(JobRequest {
            id: "tight".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: opts,
        })
        .unwrap();
    let bound_cost = match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(!cached);
            assert!(
                matches!(solution.quality, Quality::UpperBound { .. }),
                "budgeted solve must degrade, got {:?}",
                solution.quality
            );
            solution.cost
        }
        other => panic!("{other:?}"),
    };
    assert_eq!(server.stats().cache.insertions, 1);

    // 2: accept=bound is answered by the cached UpperBound, no solve
    let opts = JobOptions {
        accept: AcceptPolicy::Bound,
        ..JobOptions::default()
    };
    let rx = server
        .submit_collect(JobRequest {
            id: "bound-ok".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: opts,
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(cached);
            assert!(matches!(solution.quality, Quality::UpperBound { .. }));
        }
        other => panic!("{other:?}"),
    }

    // 3: the default accept=optimal refuses the bound, solves for real,
    // and upgrades the entry in place
    let rx = server
        .submit_collect(JobRequest {
            id: "full".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: JobOptions::default(),
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(!cached);
            assert!(solution.is_optimal());
            assert!(solution.cost.transfers <= bound_cost.transfers);
        }
        other => panic!("{other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.cache.upgrades, 1, "the slot was upgraded in place");
    assert_eq!(stats.cache.entries, 1, "upgrade, not a second entry");

    // 4: now even accept=optimal is a cache hit, carrying Optimal
    let rx = server
        .submit_collect(JobRequest {
            id: "hit".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: JobOptions::default(),
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(cached);
            assert!(solution.is_optimal());
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(server.stats().solves, 2, "only the two genuine solves ran");
    server.shutdown();
}

#[test]
fn queued_jobs_cancel_cleanly_and_priorities_reorder() {
    let server = Server::with_registry(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
        registry_with_sleeper(),
    );
    let (tx, rx) = mpsc::channel();

    // occupy the single worker so everything below stays queued
    server
        .submit(
            chain_req("occupy", 4, "sleeper:400", JobOptions::default()),
            tx.clone(),
        )
        .unwrap();
    // wait for the worker to actually pick 'occupy' up, so everything
    // submitted below is competing in the queue, not with it
    while server.stats().solves == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let low = JobOptions {
        priority: 0,
        use_cache: false,
        ..JobOptions::default()
    };
    let high = JobOptions {
        priority: 5,
        ..low.clone()
    };
    server
        .submit(chain_req("low", 5, "greedy", low.clone()), tx.clone())
        .unwrap();
    server
        .submit(chain_req("high", 6, "greedy", high), tx.clone())
        .unwrap();
    server
        .submit(chain_req("doomed", 7, "greedy", low), tx.clone())
        .unwrap();
    assert!(server.cancel("doomed"), "queued job is cancellable");
    drop(tx);

    let mut terminal_order = Vec::new();
    for ev in rx.iter() {
        match ev {
            Event::Done { id, .. } | Event::Cancelled { id } => terminal_order.push(id),
            _ => {}
        }
    }
    assert_eq!(
        terminal_order,
        ["occupy", "high", "low", "doomed"],
        "priority 5 jumps the queue; equal priorities stay FIFO; the \
         cancelled job still reports a terminal event (at pop time)"
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_over_a_saturated_queue_lose_nothing() {
    const CLIENTS: usize = 4;
    const JOBS_PER_CLIENT: usize = 5;
    let server = Server::with_registry(
        ServerConfig {
            workers: 2,
            queue_capacity: 2, // deliberately tiny: submits must block, not drop
            // this test is about backpressure, not shedding: give the
            // admission wait enough headroom that no submission sheds
            admission_wait: Duration::from_secs(600),
        },
        registry_with_sleeper(),
    );

    let results: Vec<Vec<Event>> = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let mut terminals = Vec::new();
                    for j in 0..JOBS_PER_CLIENT {
                        let id = format!("c{t}-j{j}");
                        let req = match j % 3 {
                            // duplicates: every client submits the same instance
                            0 => chain_req(&id, 9, "exact", JobOptions::default()),
                            // budget-limited: unique instances, tiny budgets
                            1 => {
                                let o = JobOptions {
                                    max_expansions: Some(2),
                                    ..JobOptions::default()
                                };
                                chain_req(&id, 10 + t * JOBS_PER_CLIENT + j, "exact", o)
                            }
                            // slow + sometimes cancelled mid-flight
                            _ => {
                                let o = JobOptions {
                                    use_cache: false,
                                    ..JobOptions::default()
                                };
                                chain_req(&id, 5, "sleeper:30", o)
                            }
                        };
                        let rx = server.submit_collect(req).unwrap();
                        if j % 3 == 2 && t % 2 == 0 {
                            server.cancel(&id);
                        }
                        terminals.push(terminal(&rx));
                    }
                    terminals
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // every submission reached exactly one terminal event, in order
    for (t, events) in results.iter().enumerate() {
        assert_eq!(events.len(), JOBS_PER_CLIENT);
        for (j, ev) in events.iter().enumerate() {
            assert_eq!(ev.id(), format!("c{t}-j{j}"), "responses matched to jobs");
            match (j % 3, ev) {
                (0 | 1, Event::Done { .. }) => {}
                (2, Event::Done { .. } | Event::Cancelled { .. }) => {}
                other => panic!("unexpected terminal {other:?}"),
            }
        }
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, (CLIENTS * JOBS_PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.submitted, "no job was dropped");
    // 8 duplicate submissions of one instance across 2 workers: at most
    // two can race past the empty cache before the first insert lands
    assert!(
        stats.cache.hits >= 6,
        "duplicates must be served from cache (hits={})",
        stats.cache.hits
    );
    server.shutdown();
}

#[test]
fn deadline_is_clocked_from_submission_not_solve_start() {
    let server = Server::with_registry(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
        registry_with_sleeper(),
    );
    let (tx, _rx_occupy) = mpsc::channel();
    // occupy the only worker long enough that the deadlined job spends
    // its whole deadline waiting in the queue
    server
        .submit(
            chain_req("occupy", 4, "sleeper:300", JobOptions::default()),
            tx,
        )
        .unwrap();
    while server.stats().solves == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let opts = JobOptions {
        deadline: Some(Duration::from_millis(100)),
        use_cache: false,
        ..JobOptions::default()
    };
    let rx = server
        .submit_collect(JobRequest {
            id: "late".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: opts,
        })
        .unwrap();
    // by the time the worker frees up, the submission-clocked deadline
    // has passed: the exact solver must degrade at its first budget
    // poll instead of burning a fresh 100ms from solve start
    match terminal(&rx) {
        Event::Done { solution, .. } => {
            assert!(
                matches!(solution.quality, Quality::UpperBound { .. }),
                "a queue-expired deadline must degrade, got {:?}",
                solution.quality
            );
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn snapshot_round_trips_optimals_across_a_server_restart() {
    // first life: solve for real, then snapshot
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let rx = server
        .submit_collect(JobRequest {
            id: "warm".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: JobOptions::default(),
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done { solution, .. } => assert!(solution.is_optimal()),
        other => panic!("{other:?}"),
    }
    let snapshot = server.cache().write_snapshot();
    server.shutdown();

    // second life: reload the snapshot; the same instance is a cache
    // hit carrying Optimal, with no solver run at all
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let report = server.cache().load_snapshot(&snapshot);
    assert_eq!(report.recovered, 1);
    assert_eq!(report.skipped, 0);
    let rx = server
        .submit_collect(JobRequest {
            id: "reheat".into(),
            spec: "exact".into(),
            instance: grid4_base(),
            options: JobOptions::default(),
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(cached, "restart must not lose the Optimal");
            assert!(solution.is_optimal());
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(server.stats().solves, 0, "no re-solve after recovery");
    server.shutdown();
}

/// The ISSUE acceptance flow on the real grid5/base cell. Release-only:
/// the exact solve takes seconds optimized and the debug-assert-laden
/// debug build pushes it into minutes.
#[cfg(not(debug_assertions))]
#[test]
fn grid5_base_acceptance_flow() {
    let grid5 = || {
        Instance::new(
            rbp_workloads::stencil::build(5, 2, 1).dag,
            4,
            CostModel::base(),
        )
    };
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });

    // tight deadline first: the cache learns an UpperBound
    let tight = JobOptions {
        deadline: Some(Duration::from_millis(50)),
        ..JobOptions::default()
    };
    let rx = server
        .submit_collect(JobRequest {
            id: "tight".into(),
            spec: "exact".into(),
            instance: grid5(),
            options: tight,
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done { solution, .. } => {
            assert!(matches!(solution.quality, Quality::UpperBound { .. }));
        }
        other => panic!("{other:?}"),
    }

    // unbudgeted: solves for real and upgrades the entry to Optimal
    let rx = server
        .submit_collect(JobRequest {
            id: "full".into(),
            spec: "exact".into(),
            instance: grid5(),
            options: JobOptions::default(),
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(!cached);
            assert!(solution.is_optimal());
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(server.stats().cache.upgrades, 1);

    // resubmit: answered from cache, no third solver run
    let rx = server
        .submit_collect(JobRequest {
            id: "again".into(),
            spec: "exact".into(),
            instance: grid5(),
            options: JobOptions::default(),
        })
        .unwrap();
    match terminal(&rx) {
        Event::Done {
            cached, solution, ..
        } => {
            assert!(cached);
            assert!(solution.is_optimal());
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(server.stats().solves, 2);
    server.shutdown();
}

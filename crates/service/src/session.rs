//! One protocol session: read requests from a byte stream, dispatch
//! them to a [`Server`], and write responses back — the same loop
//! behind the `rbp-serve` stdin/stdout mode and each TCP connection.
//!
//! Responses from concurrently running jobs are multiplexed onto the
//! single output stream by a dedicated writer thread; ordering is
//! per-job (each job's events arrive in lifecycle order) but jobs
//! interleave. The session ends at EOF or on a `shutdown` request, and
//! always waits for every job it submitted to reach its terminal event
//! before writing the final `bye` — no lost responses, even when the
//! reader hits backpressure or quits early.

use crate::protocol::{render_event, render_stats, ProtocolError, Request, RequestReader};
use crate::server::Server;
use std::io::{BufRead, Write};
use std::sync::mpsc;

/// Runs one session over the given streams. Returns once every
/// response (and the trailing `bye`) has been written.
pub fn serve_session<R, W>(reader: R, writer: W, server: &Server) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let (ev_tx, ev_rx) = mpsc::channel();

    std::thread::scope(|scope| {
        // events → rendered response chunks
        let forwarder_out = out_tx.clone();
        scope.spawn(move || {
            for ev in ev_rx {
                if forwarder_out.send(render_event(&ev)).is_err() {
                    return;
                }
            }
        });

        // rendered chunks → the output stream (sole writer)
        let writer_handle = scope.spawn(move || -> std::io::Result<()> {
            let mut writer = writer;
            for chunk in out_rx {
                writer.write_all(chunk.as_bytes())?;
                writer.flush()?;
            }
            writer.write_all(b"bye\n")?;
            writer.flush()
        });

        let mut requests = RequestReader::new(reader);
        let read_result = loop {
            match requests.next_request() {
                Ok(None) => break Ok(()),
                Ok(Some(Ok(Request::Submit(req)))) => {
                    let id = req.id.clone();
                    if let Err(e) = server.submit(req, ev_tx.clone()) {
                        let _ = out_tx.send(format!("failed {id} {e}\n"));
                    }
                }
                Ok(Some(Ok(Request::Cancel { id }))) => {
                    let found = server.cancel(&id);
                    let _ = out_tx.send(format!("ack cancel {id} found={found}\n"));
                }
                Ok(Some(Ok(Request::Stats))) => {
                    let _ = out_tx.send(render_stats(&server.stats()));
                }
                Ok(Some(Ok(Request::Shutdown))) => break Ok(()),
                Ok(Some(Err(e @ ProtocolError::UnterminatedSubmit { .. }))) => {
                    // the stream ended mid-request; report and stop reading
                    let _ = out_tx.send(format!("protocol-error {e}\n"));
                    break Ok(());
                }
                Ok(Some(Err(e))) => {
                    let _ = out_tx.send(format!("protocol-error {e}\n"));
                }
                Err(io_err) => break Err(io_err),
            }
        };

        // Dropping our senders lets the pipeline drain: the forwarder
        // exits once the last in-flight job drops its event sender, the
        // writer exits (writing `bye`) once the forwarder is gone.
        drop(ev_tx);
        drop(out_tx);
        let write_result = writer_handle.join().expect("writer thread must not panic");
        read_result.and(write_result)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use rbp_core::{write_instance, CostModel, Instance};
    use rbp_graph::generate;
    use std::io::Cursor;
    use std::sync::{Arc, Mutex};

    /// A `Write + Send` sink tests can read back after the session.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn full_transcript_solve_hit_stats_bye() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::oneshot());
        let doc = write_instance(&inst);
        let script = format!("submit a exact\n{doc}submit b exact\n{doc}stats\nshutdown\n");
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let out = SharedBuf::default();
        serve_session(Cursor::new(script), out.clone(), &server).unwrap();
        let text = out.contents();
        assert!(text.contains("queued a\n"), "{text}");
        assert!(text.contains("queued b\n"), "{text}");
        assert!(
            text.contains("result a spec=exact cached=false\n"),
            "{text}"
        );
        // single worker: b runs after a completed, so it must hit
        assert!(text.contains("cache-hit b exact\n"), "{text}");
        assert!(text.contains("result b spec=exact cached=true\n"), "{text}");
        assert!(text.trim_end().ends_with("bye"), "{text}");
        let stats = server.stats();
        assert_eq!(stats.solves, 1);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_do_not_kill_the_session() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let out = SharedBuf::default();
        serve_session(
            Cursor::new("frob\nstats\n".to_string()),
            out.clone(),
            &server,
        )
        .unwrap();
        let text = out.contents();
        assert!(text.contains("protocol-error"), "{text}");
        assert!(text.contains("stats submitted=0"), "{text}");
        server.shutdown();
    }

    #[test]
    fn cancel_ack_reports_unknown_ids() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let out = SharedBuf::default();
        serve_session(
            Cursor::new("cancel nope\n".to_string()),
            out.clone(),
            &server,
        )
        .unwrap();
        assert!(out.contents().contains("ack cancel nope found=false"));
        server.shutdown();
    }
}

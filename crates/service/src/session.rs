//! One protocol session: read requests from a byte stream, dispatch
//! them to a [`Server`], and write responses back — the same loop
//! behind the `rbp-serve` stdin/stdout mode and each TCP connection.
//!
//! Responses from concurrently running jobs are multiplexed onto the
//! single output stream by a dedicated writer thread; ordering is
//! per-job (each job's events arrive in lifecycle order) but jobs
//! interleave. The session ends at EOF or on a `shutdown` request, and
//! always waits for every job it submitted to reach its terminal event
//! before writing the final `bye` — no lost responses, even when the
//! reader hits backpressure or quits early.

use crate::protocol::{render_event, render_stats, ProtocolError, Request, RequestReader};
use crate::server::{Server, SubmitError};
use std::io::{BufRead, Write};
use std::sync::mpsc;

/// Why a session ended abnormally. The *server* outlives any of these:
/// a broken client stream or a writer-thread fault costs that one
/// session, nothing else.
#[derive(Debug)]
pub enum SessionError {
    /// The session's byte streams failed (EOF mid-frame is not an
    /// error; this is a real read/write failure such as a broken pipe).
    Io(std::io::Error),
    /// The writer thread panicked. Contained here instead of unwinding
    /// through the session (which would take the acceptor down with
    /// it); the jobs the session submitted still ran to their terminal
    /// events.
    WriterPanicked {
        /// Stringified panic payload, for logs.
        payload: String,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session i/o error: {e}"),
            SessionError::WriterPanicked { payload } => {
                write!(f, "session writer thread panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<SessionError> for std::io::Error {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Io(e) => e,
            SessionError::WriterPanicked { payload } => std::io::Error::other(payload),
        }
    }
}

/// Runs one session over the given streams. Returns once every
/// response (and the trailing `bye`) has been written — or with a
/// structured [`SessionError`] when the streams or the writer thread
/// die first; either way the [`Server`] stays healthy.
pub fn serve_session<R, W>(reader: R, writer: W, server: &Server) -> Result<(), SessionError>
where
    R: BufRead,
    W: Write + Send,
{
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let (ev_tx, ev_rx) = mpsc::channel();

    std::thread::scope(|scope| {
        // events → rendered response chunks
        let forwarder_out = out_tx.clone();
        scope.spawn(move || {
            for ev in ev_rx {
                if forwarder_out.send(render_event(&ev)).is_err() {
                    return;
                }
            }
        });

        // rendered chunks → the output stream (sole writer)
        let writer_handle = scope.spawn(move || -> std::io::Result<()> {
            let mut writer = writer;
            for chunk in out_rx {
                writer.write_all(chunk.as_bytes())?;
                writer.flush()?;
            }
            writer.write_all(b"bye\n")?;
            writer.flush()
        });

        let mut requests = RequestReader::new(reader);
        let read_result = loop {
            match requests.next_request() {
                Ok(None) => break Ok(()),
                Ok(Some(Ok(Request::Submit(req)))) => {
                    let id = req.id.clone();
                    match server.submit(req, ev_tx.clone()) {
                        Ok(()) => {}
                        Err(SubmitError::Overloaded { retry_after }) => {
                            // structured shed: the client should back
                            // off about retry-after-ms and resubmit
                            let _ = out_tx.send(format!(
                                "shed {id} retry-after-ms={}\n",
                                retry_after.as_millis()
                            ));
                        }
                        Err(e) => {
                            let _ = out_tx.send(format!("failed {id} {e}\n"));
                        }
                    }
                }
                Ok(Some(Ok(Request::Cancel { id }))) => {
                    let found = server.cancel(&id);
                    let _ = out_tx.send(format!("ack cancel {id} found={found}\n"));
                }
                Ok(Some(Ok(Request::Stats))) => {
                    let _ = out_tx.send(render_stats(&server.stats()));
                }
                Ok(Some(Ok(Request::Shutdown))) => break Ok(()),
                Ok(Some(Err(e @ ProtocolError::UnterminatedSubmit { .. }))) => {
                    // the stream ended mid-request; report and stop reading
                    let _ = out_tx.send(format!("protocol-error {e}\n"));
                    break Ok(());
                }
                Ok(Some(Err(e))) => {
                    let _ = out_tx.send(format!("protocol-error {e}\n"));
                }
                Err(io_err) => break Err(io_err),
            }
        };

        // Dropping our senders lets the pipeline drain: the forwarder
        // exits once the last in-flight job drops its event sender, the
        // writer exits (writing `bye`) once the forwarder is gone.
        drop(ev_tx);
        drop(out_tx);
        // a writer panic is contained as a structured error — it must
        // not unwind through whoever runs sessions (the TCP acceptor,
        // the stdin loop); the server and its jobs are unaffected
        let write_result = match writer_handle.join() {
            Ok(r) => r.map_err(SessionError::from),
            Err(payload) => Err(SessionError::WriterPanicked {
                payload: rbp_solvers::panic_payload_to_string(payload),
            }),
        };
        read_result.map_err(SessionError::from).and(write_result)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use rbp_core::{write_instance, CostModel, Instance};
    use rbp_graph::generate;
    use std::io::Cursor;
    use std::sync::{Arc, Mutex};

    /// A `Write + Send` sink tests can read back after the session.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn full_transcript_solve_hit_stats_bye() {
        let inst = Instance::new(generate::chain(6), 2, CostModel::oneshot());
        let doc = write_instance(&inst);
        let script = format!("submit a exact\n{doc}submit b exact\n{doc}stats\nshutdown\n");
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let out = SharedBuf::default();
        serve_session(Cursor::new(script), out.clone(), &server).unwrap();
        let text = out.contents();
        assert!(text.contains("queued a\n"), "{text}");
        assert!(text.contains("queued b\n"), "{text}");
        assert!(
            text.contains("result a spec=exact cached=false\n"),
            "{text}"
        );
        // single worker: b runs after a completed, so it must hit
        assert!(text.contains("cache-hit b exact\n"), "{text}");
        assert!(text.contains("result b spec=exact cached=true\n"), "{text}");
        assert!(text.trim_end().ends_with("bye"), "{text}");
        let stats = server.stats();
        assert_eq!(stats.solves, 1);
        server.shutdown();
    }

    #[test]
    fn protocol_errors_do_not_kill_the_session() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let out = SharedBuf::default();
        serve_session(
            Cursor::new("frob\nstats\n".to_string()),
            out.clone(),
            &server,
        )
        .unwrap();
        let text = out.contents();
        assert!(text.contains("protocol-error"), "{text}");
        assert!(text.contains("stats submitted=0"), "{text}");
        server.shutdown();
    }

    /// A writer that panics on its first write.
    struct PanickyWriter;
    impl Write for PanickyWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            panic!("writer exploded");
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer whose pipe is already broken.
    struct BrokenPipeWriter;
    impl Write for BrokenPipeWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client went away",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_panic_is_a_structured_error_and_the_server_survives() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let err = serve_session(Cursor::new("stats\n".to_string()), PanickyWriter, &server)
            .expect_err("a panicking writer must surface as an error");
        match err {
            SessionError::WriterPanicked { payload } => {
                assert_eq!(payload, "writer exploded")
            }
            other => panic!("{other:?}"),
        }
        // the server is untouched: a fresh session works end to end
        let out = SharedBuf::default();
        serve_session(Cursor::new("stats\n".to_string()), out.clone(), &server).unwrap();
        assert!(out.contents().contains("stats submitted=0"));
        server.shutdown();
    }

    #[test]
    fn broken_pipe_is_an_io_error_and_submitted_jobs_still_finish() {
        let inst = Instance::new(generate::chain(5), 2, CostModel::oneshot());
        let doc = write_instance(&inst);
        let script = format!("submit j exact\n{doc}shutdown\n");
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let err = serve_session(Cursor::new(script), BrokenPipeWriter, &server)
            .expect_err("a dead client stream must surface as an error");
        match err {
            SessionError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe),
            other => panic!("{other:?}"),
        }
        // the job the session submitted reaches its terminal event and
        // populates the cache even though nobody could hear the answer
        // (the dead session does not wait for it, so poll briefly)
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let stats = server.stats();
            if stats.submitted == 1 && stats.completed == 1 {
                assert_eq!(stats.cache.insertions, 1);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job never finished");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[test]
    fn cancel_ack_reports_unknown_ids() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let out = SharedBuf::default();
        serve_session(
            Cursor::new("cancel nope\n".to_string()),
            out.clone(),
            &server,
        )
        .unwrap();
        assert!(out.contents().contains("ack cancel nope found=false"));
        server.shutdown();
    }
}

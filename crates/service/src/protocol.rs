//! The line-oriented batch protocol: request parsing and response
//! rendering.
//!
//! ## Requests (client → server)
//!
//! ```text
//! submit <id> <spec> [deadline-ms=N] [max-expansions=N] [priority=N]
//!                    [accept=optimal|bound] [cache=on|off]
//! <instance document>                 # instance v1 … end (rbp_core::io)
//! cancel <id>
//! stats
//! shutdown
//! ```
//!
//! A `submit` line is immediately followed by one `instance v1`
//! document; the document's `end` terminates the request. Blank lines
//! and `#` comments are ignored everywhere.
//!
//! ## Responses (server → client)
//!
//! ```text
//! queued <id>
//! cache-hit <id> <spec>
//! progress <id> <states_expanded> <states_per_sec>
//! result <id> spec=<spec> cached=<true|false>
//! <solution document>                 # solution v1 … end (rbp_solvers::wire)
//! failed <id> <message>
//! cancelled <id>
//! shed <id> retry-after-ms=N
//! ack cancel <id> found=<true|false>
//! stats submitted=N completed=N solves=N queued=N panics=N
//!       worker-restarts=N shed=N retries=N cache-entries=N
//!       cache-hits=N cache-misses=N cache-insertions=N cache-upgrades=N
//!       cache-recovered=N cache-skipped=N
//! protocol-error <message>
//! bye
//! ```
//!
//! Every accepted `submit` ends in exactly one of `result`, `failed`,
//! or `cancelled`. A `shed` response means the submission was *not*
//! accepted — the queue stayed full past the admission wait — and the
//! client should back off roughly `retry-after-ms` before resubmitting;
//! no further events arrive for a shed id. `bye` is the final line of a
//! session. The `stats` response is a single line (wrapped above for
//! readability).

use crate::cache::AcceptPolicy;
use crate::server::{Event, JobOptions, JobRequest, ServerStats};
use rbp_core::io as core_io;
use rbp_solvers::wire;
use std::io::BufRead;
use std::time::Duration;

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// `submit …` plus its instance document.
    Submit(JobRequest),
    /// `cancel <id>`.
    Cancel {
        /// The job id to cancel.
        id: String,
    },
    /// `stats`.
    Stats,
    /// `shutdown` — ends the session.
    Shutdown,
}

/// Errors from [`RequestReader`]. Line numbers are 1-based positions in
/// the session stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The first token of a request line is not a known verb.
    UnknownCommand {
        /// Line of the rejected verb.
        line: usize,
        /// The rejected token.
        token: String,
    },
    /// A request line could not be parsed.
    Malformed {
        /// Line of the offending statement.
        line: usize,
        /// The token (or fragment) that was rejected.
        token: String,
        /// What the parser expected.
        expected: &'static str,
    },
    /// A `key=value` option on a `submit` line was rejected.
    BadOption {
        /// Line of the submit statement.
        line: usize,
        /// The offending option, verbatim.
        option: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The instance document under a `submit` failed to parse (line
    /// numbers inside are already in session coordinates).
    Instance(core_io::ParseError),
    /// The stream ended inside a `submit` body.
    UnterminatedSubmit {
        /// Line of the submit statement.
        line: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnknownCommand { line, token } => {
                write!(
                    f,
                    "line {line}: unknown command '{token}' (expected submit, cancel, stats, or shutdown)"
                )
            }
            ProtocolError::Malformed {
                line,
                token,
                expected,
            } => write!(f, "line {line}: unexpected '{token}', expected {expected}"),
            ProtocolError::BadOption {
                line,
                option,
                reason,
            } => write!(f, "line {line}: bad option '{option}': {reason}"),
            ProtocolError::Instance(e) => write!(f, "bad instance document: {e}"),
            ProtocolError::UnterminatedSubmit { line } => write!(
                f,
                "line {line}: stream ended inside the submit body (missing 'end'?)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<core_io::ParseError> for ProtocolError {
    fn from(e: core_io::ParseError) -> Self {
        ProtocolError::Instance(e)
    }
}

/// Incremental request parser over a buffered byte stream, tracking
/// session line numbers for error reports.
pub struct RequestReader<R> {
    reader: R,
    line: usize,
}

impl<R: BufRead> RequestReader<R> {
    /// Wraps a stream; line numbering starts at 1.
    pub fn new(reader: R) -> Self {
        RequestReader { reader, line: 0 }
    }

    /// Reads one raw line; `Ok(None)` at EOF.
    fn next_line(&mut self) -> std::io::Result<Option<String>> {
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.line += 1;
        Ok(Some(buf))
    }

    /// Reads the next request. `Ok(None)` at end of stream;
    /// `Ok(Some(Err(_)))` reports a protocol error after resynchronizing
    /// (a malformed `submit` still consumes its body through `end`, so
    /// the next call starts at a request boundary).
    #[allow(clippy::type_complexity)]
    pub fn next_request(&mut self) -> std::io::Result<Option<Result<Request, ProtocolError>>> {
        loop {
            let Some(raw) = self.next_line()? else {
                return Ok(None);
            };
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = self.line;
            let mut parts = line.split_whitespace();
            let verb = parts.next().expect("nonempty line");
            return Ok(Some(match verb {
                "submit" => self.read_submit(lineno, parts),
                "cancel" => match (parts.next(), parts.next()) {
                    (Some(id), None) => Ok(Request::Cancel { id: id.to_string() }),
                    _ => Err(ProtocolError::Malformed {
                        line: lineno,
                        token: line.to_string(),
                        expected: "'cancel <id>'",
                    }),
                },
                "stats" => Ok(Request::Stats),
                "shutdown" => Ok(Request::Shutdown),
                other => Err(ProtocolError::UnknownCommand {
                    line: lineno,
                    token: other.to_string(),
                }),
            }));
        }
    }

    /// Parses a `submit` head and its instance-document body. The body
    /// is always consumed through its `end` terminator — even when the
    /// head is bad — so the stream stays request-aligned.
    fn read_submit(
        &mut self,
        head_line: usize,
        mut parts: std::str::SplitWhitespace<'_>,
    ) -> Result<Request, ProtocolError> {
        let head: Result<(String, String, JobOptions), ProtocolError> = (|| {
            let id = parts
                .next()
                .ok_or(ProtocolError::Malformed {
                    line: head_line,
                    token: "submit".to_string(),
                    expected: "'submit <id> <spec> [options…]'",
                })?
                .to_string();
            let spec = parts
                .next()
                .ok_or(ProtocolError::Malformed {
                    line: head_line,
                    token: id.clone(),
                    expected: "a registry spec after the job id",
                })?
                .to_string();
            let mut options = JobOptions::default();
            for opt in parts {
                let (key, value) = opt
                    .split_once('=')
                    .ok_or_else(|| bad_option(head_line, opt, "options are 'key=value'"))?;
                match key {
                    "deadline-ms" => {
                        let ms: u64 = value.parse().map_err(|_| {
                            bad_option(head_line, opt, "deadline-ms takes an integer")
                        })?;
                        options.deadline = Some(Duration::from_millis(ms));
                    }
                    "max-expansions" => {
                        options.max_expansions = Some(value.parse().map_err(|_| {
                            bad_option(head_line, opt, "max-expansions takes an integer")
                        })?);
                    }
                    "priority" => {
                        options.priority = value
                            .parse()
                            .map_err(|_| bad_option(head_line, opt, "priority takes an integer"))?;
                    }
                    "accept" => {
                        options.accept = match value {
                            "optimal" => AcceptPolicy::Optimal,
                            "bound" => AcceptPolicy::Bound,
                            _ => {
                                return Err(bad_option(
                                    head_line,
                                    opt,
                                    "accept is 'optimal' or 'bound'",
                                ))
                            }
                        };
                    }
                    "cache" => {
                        options.use_cache = match value {
                            "on" => true,
                            "off" => false,
                            _ => return Err(bad_option(head_line, opt, "cache is 'on' or 'off'")),
                        };
                    }
                    _ => {
                        return Err(bad_option(
                            head_line,
                            opt,
                            "known options: deadline-ms, max-expansions, priority, accept, cache",
                        ))
                    }
                }
            }
            Ok((id, spec, options))
        })();

        // consume the body through `end` regardless, for resync
        let mut body = String::new();
        let body_first_line = self.line + 1;
        let terminated = loop {
            let Some(raw) = self
                .next_line()
                .map_err(|_| ProtocolError::UnterminatedSubmit { line: head_line })?
            else {
                break false;
            };
            let done = raw.trim() == "end";
            body.push_str(&raw);
            if done {
                break true;
            }
        };
        if !terminated {
            return Err(ProtocolError::UnterminatedSubmit { line: head_line });
        }

        let (id, spec, options) = head?;
        let instance = core_io::parse_instance_at(&body, body_first_line)?;
        Ok(Request::Submit(JobRequest {
            id,
            spec,
            instance,
            options,
        }))
    }
}

fn bad_option(line: usize, option: &str, reason: &'static str) -> ProtocolError {
    ProtocolError::BadOption {
        line,
        option: option.to_string(),
        reason,
    }
}

/// Renders one server [`Event`] in the response grammar. `Done` renders
/// as a `result` line followed by a full `solution v1` document.
pub fn render_event(ev: &Event) -> String {
    match ev {
        Event::Queued { id } => format!("queued {id}\n"),
        Event::CacheHit { id, spec } => format!("cache-hit {id} {spec}\n"),
        Event::Progress {
            id,
            states_expanded,
            states_per_sec,
        } => format!("progress {id} {states_expanded} {states_per_sec}\n"),
        Event::Done {
            id,
            spec,
            cached,
            solution,
        } => {
            let mut out = format!("result {id} spec={spec} cached={cached}\n");
            out.push_str(&wire::write_solution(spec, solution));
            out
        }
        Event::Failed { id, error } => format!("failed {id} {error}\n"),
        Event::Cancelled { id } => format!("cancelled {id}\n"),
    }
}

/// Renders the one-line `stats` response.
pub fn render_stats(s: &ServerStats) -> String {
    format!(
        "stats submitted={} completed={} solves={} queued={} panics={} worker-restarts={} shed={} retries={} cache-entries={} cache-hits={} cache-misses={} cache-insertions={} cache-upgrades={} cache-recovered={} cache-skipped={}\n",
        s.submitted,
        s.completed,
        s.solves,
        s.queued,
        s.panics,
        s.worker_restarts,
        s.shed,
        s.retries_observed,
        s.cache.entries,
        s.cache.hits,
        s.cache.misses,
        s.cache.insertions,
        s.cache.upgrades,
        s.cache.recovered,
        s.cache.skipped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{write_instance, CostModel, Instance};
    use rbp_graph::generate;

    fn submit_doc(id: &str, spec: &str, opts: &str, inst: &Instance) -> String {
        let tail = if opts.is_empty() {
            String::new()
        } else {
            format!(" {opts}")
        };
        format!("submit {id} {spec}{tail}\n{}", write_instance(inst))
    }

    fn read_all(text: &str) -> Vec<Result<Request, ProtocolError>> {
        let mut rr = RequestReader::new(std::io::Cursor::new(text.to_string()));
        let mut out = Vec::new();
        while let Some(r) = rr.next_request().unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn submit_round_trips_instance_and_options() {
        let inst = Instance::new(generate::chain(5), 2, CostModel::base());
        let text = submit_doc(
            "job-1",
            "exact",
            "max-expansions=100 priority=3 accept=bound cache=on",
            &inst,
        );
        let reqs = read_all(&text);
        assert_eq!(reqs.len(), 1);
        match reqs.into_iter().next().unwrap().unwrap() {
            Request::Submit(req) => {
                assert_eq!(req.id, "job-1");
                assert_eq!(req.spec, "exact");
                assert_eq!(req.options.max_expansions, Some(100));
                assert_eq!(req.options.priority, 3);
                assert_eq!(req.options.accept, AcceptPolicy::Bound);
                assert!(req.options.use_cache);
                assert!(core_io::same_instance(&req.instance, &inst));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_verbs_parse() {
        let reqs = read_all("cancel j7\nstats\nshutdown\n");
        assert!(matches!(&reqs[0], Ok(Request::Cancel { id }) if id == "j7"));
        assert!(matches!(&reqs[1], Ok(Request::Stats)));
        assert!(matches!(&reqs[2], Ok(Request::Shutdown)));
    }

    #[test]
    fn bad_head_still_resyncs_past_the_body() {
        let inst = Instance::new(generate::chain(3), 2, CostModel::base());
        let text = format!(
            "{}stats\n",
            submit_doc("j1", "exact", "accept=maybe", &inst)
        );
        let reqs = read_all(&text);
        assert_eq!(reqs.len(), 2, "body consumed, next request seen");
        assert!(matches!(
            &reqs[0],
            Err(ProtocolError::BadOption { option, .. }) if option == "accept=maybe"
        ));
        assert!(matches!(&reqs[1], Ok(Request::Stats)));
    }

    #[test]
    fn instance_errors_carry_session_line_numbers() {
        // line 1: submit head; line 2: instance header; line 3: bad model
        let text = "submit j1 exact\ninstance v1\nmodel quantum\nr 2\ndag 1\nend\n";
        let reqs = read_all(text);
        match &reqs[0] {
            Err(ProtocolError::Instance(core_io::ParseError::UnexpectedToken {
                line,
                token,
                ..
            })) => {
                assert_eq!(*line, 3);
                assert_eq!(token, "quantum");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_submit_is_reported() {
        let text = "submit j1 exact\ninstance v1\nmodel base\n";
        let reqs = read_all(text);
        assert!(matches!(
            &reqs[0],
            Err(ProtocolError::UnterminatedSubmit { line: 1 })
        ));
    }

    #[test]
    fn unknown_commands_skip_one_line_only() {
        let reqs = read_all("frobnicate\nstats\n");
        assert!(
            matches!(&reqs[0], Err(ProtocolError::UnknownCommand { token, .. }) if token == "frobnicate")
        );
        assert!(matches!(&reqs[1], Ok(Request::Stats)));
    }

    #[test]
    fn done_renders_a_parseable_solution_document() {
        let inst = Instance::new(generate::chain(4), 2, CostModel::oneshot());
        let sol = rbp_solvers::registry::solve("greedy", &inst).unwrap();
        let ev = Event::Done {
            id: "j1".into(),
            spec: "greedy:most-red-inputs/min-uses".into(),
            cached: false,
            solution: sol.clone(),
        };
        let text = render_event(&ev);
        let mut lines = text.lines();
        let head = lines.next().unwrap();
        assert!(head.starts_with("result j1 spec=greedy:most-red-inputs/min-uses cached=false"));
        let rest: String = lines.map(|l| format!("{l}\n")).collect();
        let parsed = wire::parse_solution(&rest).unwrap();
        assert_eq!(parsed.solution.cost, sol.cost);
    }
}

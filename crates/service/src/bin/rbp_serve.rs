//! `rbp-serve`: the batch-solve server on stdin/stdout.
//!
//! ```text
//! rbp-serve [--workers N] [--queue N]
//! rbp-serve --tcp ADDR:PORT [--workers N] [--queue N]   (feature "tcp")
//! ```
//!
//! Reads protocol requests from stdin and writes responses to stdout
//! (see `rbp_service::protocol` for the grammar); diagnostics go to
//! stderr. With `--tcp`, listens instead and serves each connection the
//! same protocol against one shared server and cache.

use rbp_service::{serve_session, Server, ServerConfig};
use std::io::{BufReader, Write as _};
use std::process::ExitCode;

struct Args {
    workers: usize,
    queue: usize,
    tcp: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 0,
        queue: 64,
        tcp: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers takes an integer".to_string())?;
            }
            "--queue" => {
                args.queue = take("--queue")?
                    .parse()
                    .map_err(|_| "--queue takes an integer".to_string())?;
            }
            "--tcp" => args.tcp = Some(take("--tcp")?),
            "--help" | "-h" => {
                return Err("usage: rbp-serve [--workers N] [--queue N] [--tcp ADDR:PORT]".into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::start(ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue,
    });

    if let Some(addr) = args.tcp {
        return serve_tcp(addr, server);
    }

    let stdin = std::io::stdin();
    let result = serve_session(BufReader::new(stdin.lock()), std::io::stdout(), &server);
    server.shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "session failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(feature = "tcp")]
fn serve_tcp(addr: String, server: Server) -> ExitCode {
    eprintln!("rbp-serve listening on {addr}");
    match rbp_service::tcp::serve_tcp(addr, std::sync::Arc::new(server)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(feature = "tcp"))]
fn serve_tcp(_addr: String, _server: Server) -> ExitCode {
    eprintln!("this build has no TCP support; rebuild with --features tcp");
    ExitCode::FAILURE
}

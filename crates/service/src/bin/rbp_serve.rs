//! `rbp-serve`: the batch-solve server on stdin/stdout.
//!
//! ```text
//! rbp-serve [--workers N] [--queue N] [--snapshot PATH]
//! rbp-serve --tcp ADDR:PORT [--workers N] [--queue N] [--snapshot PATH]
//!                                                     (feature "tcp")
//! ```
//!
//! Reads protocol requests from stdin and writes responses to stdout
//! (see `rbp_service::protocol` for the grammar); diagnostics go to
//! stderr. With `--tcp`, listens instead and serves each connection the
//! same protocol against one shared server and cache.
//!
//! With `--snapshot PATH`, the solution cache is reloaded from PATH at
//! startup (a missing file is an empty cache; damaged entries are
//! skipped and counted, never fatal) and written back when the process
//! exits normally — so a kill-and-restart retains every cached result
//! that made it to the last snapshot.

use rbp_service::{serve_session, Server, ServerConfig};
use std::io::{BufReader, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workers: usize,
    queue: usize,
    tcp: Option<String>,
    snapshot: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workers: 0,
        queue: 64,
        tcp: None,
        snapshot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--workers" => {
                args.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers takes an integer".to_string())?;
            }
            "--queue" => {
                args.queue = take("--queue")?
                    .parse()
                    .map_err(|_| "--queue takes an integer".to_string())?;
            }
            "--tcp" => args.tcp = Some(take("--tcp")?),
            "--snapshot" => args.snapshot = Some(PathBuf::from(take("--snapshot")?)),
            "--help" | "-h" => return Err(
                "usage: rbp-serve [--workers N] [--queue N] [--snapshot PATH] [--tcp ADDR:PORT]"
                    .into(),
            ),
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn load_snapshot(server: &Server, path: &std::path::Path) {
    match server.cache().load_from(path) {
        Ok(report) => {
            if report.recovered > 0 || report.skipped > 0 {
                eprintln!(
                    "rbp-serve: snapshot {}: recovered {} entries, skipped {}",
                    path.display(),
                    report.recovered,
                    report.skipped
                );
            }
        }
        Err(e) => eprintln!(
            "rbp-serve: could not read snapshot {}: {e} (starting cold)",
            path.display()
        ),
    }
}

fn save_snapshot(server: &Server, path: &std::path::Path) {
    match server.cache().save_to(path) {
        Ok(()) => eprintln!(
            "rbp-serve: wrote {} cache entries to {}",
            server.cache().stats().entries,
            path.display()
        ),
        Err(e) => eprintln!(
            "rbp-serve: could not write snapshot {}: {e}",
            path.display()
        ),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = Server::start(ServerConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        ..ServerConfig::default()
    });
    if let Some(path) = &args.snapshot {
        load_snapshot(&server, path);
    }

    if let Some(addr) = args.tcp {
        return serve_tcp(addr, server, args.snapshot);
    }

    let stdin = std::io::stdin();
    let result = serve_session(BufReader::new(stdin.lock()), std::io::stdout(), &server);
    if let Some(path) = &args.snapshot {
        save_snapshot(&server, path);
    }
    server.shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let _ = writeln!(std::io::stderr(), "session failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(feature = "tcp")]
fn serve_tcp(addr: String, server: Server, snapshot: Option<PathBuf>) -> ExitCode {
    eprintln!("rbp-serve listening on {addr}");
    let server = std::sync::Arc::new(server);
    let result = rbp_service::tcp::serve_tcp(addr, std::sync::Arc::clone(&server));
    if let Some(path) = &snapshot {
        save_snapshot(&server, path);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("listener failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(feature = "tcp"))]
fn serve_tcp(_addr: String, _server: Server, _snapshot: Option<PathBuf>) -> ExitCode {
    eprintln!("this build has no TCP support; rebuild with --features tcp");
    ExitCode::FAILURE
}

//! Deterministic fault injection for the service stack (the `chaos`
//! feature).
//!
//! A [`FaultPlan`] is a pure function from `(seed, site, token)` to a
//! fault decision: no RNG state, no time dependence, no ordering
//! dependence. Two runs with the same seed and the same job ids inject
//! *exactly* the same faults regardless of thread interleaving — which
//! is what lets the soak harness replay thousands of jobs under
//! injected solver panics, worker deaths, routing delays, mid-stream
//! disconnects, and snapshot corruption, and still assert the
//! exactly-one-terminal-event invariant per job.
//!
//! The plan is threaded through the stack behind `cfg(feature =
//! "chaos")`:
//! - `server.rs` consults [`FaultPlan::routing_delay`],
//!   [`FaultPlan::worker_dies`] (a panic *outside* the solve guard,
//!   exercising worker respawn), and [`FaultPlan::solve_panics`] (a
//!   panic *inside* the solve guard, exercising structured
//!   `SolveError::Panicked` containment);
//! - sessions wrap their writer in a [`ChaosWriter`] to inject
//!   mid-stream disconnects ([`FaultPlan::disconnect_after`]);
//! - snapshots pass through [`FaultPlan::corrupt_snapshot`] to model
//!   on-disk damage before a reload.
//!
//! Default builds compile none of this: the hooks in the service
//! sources vanish with the feature, so the zero-fault production path
//! is byte-identical to a build without chaos.

use std::io::Write;
use std::time::Duration;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fault-site discriminants, so the same token rolls independently at
/// each injection point.
mod site {
    pub const SOLVE_PANIC: u64 = 0x01;
    pub const WORKER_DEATH: u64 = 0x02;
    pub const ROUTING_DELAY: u64 = 0x03;
    pub const DISCONNECT: u64 = 0x04;
    pub const CORRUPT: u64 = 0x05;
}

/// A seeded, deterministic fault plan. Rates are per-mille (0–1000);
/// a zero rate disables that fault class entirely.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per-mille of solves that panic inside the solve guard.
    pub solve_panic_per_mille: u16,
    /// Per-mille of jobs whose worker thread dies outside the guard.
    pub worker_death_per_mille: u16,
    /// Per-mille of jobs delayed before routing to a solver.
    pub routing_delay_per_mille: u16,
    /// Ceiling for injected routing delays.
    pub max_routing_delay: Duration,
    /// Per-mille of sessions whose writer disconnects mid-stream.
    pub disconnect_per_mille: u16,
    /// Per-mille of snapshot entries corrupted by
    /// [`FaultPlan::corrupt_snapshot`].
    pub corrupt_entry_per_mille: u16,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero) — the identity
    /// baseline a soak run diffs against.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            solve_panic_per_mille: 0,
            worker_death_per_mille: 0,
            routing_delay_per_mille: 0,
            max_routing_delay: Duration::from_millis(2),
            disconnect_per_mille: 0,
            corrupt_entry_per_mille: 0,
        }
    }

    /// The soak default: every fault class on at a low rate.
    pub fn storm(seed: u64) -> FaultPlan {
        FaultPlan {
            solve_panic_per_mille: 60,
            worker_death_per_mille: 30,
            routing_delay_per_mille: 100,
            disconnect_per_mille: 150,
            corrupt_entry_per_mille: 120,
            ..FaultPlan::quiet(seed)
        }
    }

    /// The seed this plan rolls under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic roll for `(site, token)` under this seed.
    fn roll(&self, site: u64, token: &str) -> u64 {
        let mut h = self.seed ^ mix64(site);
        for b in token.bytes() {
            h = mix64(h ^ u64::from(b));
        }
        mix64(h)
    }

    fn hits(&self, site: u64, token: &str, per_mille: u16) -> bool {
        per_mille > 0 && self.roll(site, token) % 1000 < u64::from(per_mille)
    }

    /// Whether the solve for job `id` should panic inside the guard.
    pub fn solve_panics(&self, id: &str) -> bool {
        self.hits(site::SOLVE_PANIC, id, self.solve_panic_per_mille)
    }

    /// Whether the worker routing job `id` should die (an unguarded
    /// panic, exercising supervision and respawn).
    pub fn worker_dies(&self, id: &str) -> bool {
        self.hits(site::WORKER_DEATH, id, self.worker_death_per_mille)
    }

    /// An injected queue/routing delay for job `id`, if any.
    pub fn routing_delay(&self, id: &str) -> Option<Duration> {
        if !self.hits(site::ROUTING_DELAY, id, self.routing_delay_per_mille) {
            return None;
        }
        let max = self.max_routing_delay.as_micros().max(1) as u64;
        Some(Duration::from_micros(
            self.roll(site::ROUTING_DELAY ^ 0xff, id) % max,
        ))
    }

    /// After how many writes the session writer for `token` should
    /// fail with a broken pipe, if this session disconnects at all.
    pub fn disconnect_after(&self, token: &str) -> Option<usize> {
        if !self.hits(site::DISCONNECT, token, self.disconnect_per_mille) {
            return None;
        }
        Some((self.roll(site::DISCONNECT ^ 0xff, token) % 16) as usize)
    }

    /// Deterministically damages a snapshot document: each `entry`
    /// line rolls against [`FaultPlan::corrupt_entry_per_mille`] and a
    /// hit mangles the line (flipping its key hex into garbage), as if
    /// that record had rotted on disk. The surrounding entries stay
    /// intact, so a tolerant loader must recover exactly the untouched
    /// ones.
    pub fn corrupt_snapshot(&self, text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        for line in text.lines() {
            if line.starts_with("entry ")
                && self.hits(site::CORRUPT, line, self.corrupt_entry_per_mille)
            {
                out.push_str("entry #rotted# 9 notanumber\n");
            } else {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// A writer that fails with `BrokenPipe` after a planned number of
/// writes — a client that vanished mid-stream. Wrap a session's output
/// in one to drive the disconnect fault class end to end.
pub struct ChaosWriter<W> {
    inner: W,
    /// Writes remaining before the pipe "breaks"; `None` never breaks.
    remaining: Option<usize>,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner`, disconnecting per `plan`'s roll for `token`
    /// (no-op pass-through when the roll says this session survives).
    pub fn new(inner: W, plan: &FaultPlan, token: &str) -> ChaosWriter<W> {
        ChaosWriter {
            inner,
            remaining: plan.disconnect_after(token),
        }
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match &mut self.remaining {
            Some(0) => Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "chaos: session writer disconnected",
            )),
            Some(n) => {
                *n -= 1;
                self.inner.write(buf)
            }
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if matches!(self.remaining, Some(0)) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "chaos: session writer disconnected",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::storm(42);
        let b = FaultPlan::storm(42);
        let c = FaultPlan::storm(43);
        let ids: Vec<String> = (0..2000).map(|i| format!("job-{i}")).collect();
        let picks =
            |p: &FaultPlan| -> Vec<bool> { ids.iter().map(|i| p.solve_panics(i)).collect() };
        assert_eq!(picks(&a), picks(&b), "same seed, same plan");
        assert_ne!(picks(&a), picks(&c), "different seed, different plan");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = FaultPlan::storm(7);
        let n = 10_000;
        let hits = (0..n)
            .filter(|i| p.solve_panics(&format!("job-{i}")))
            .count();
        // 60‰ of 10k = 600 expected; allow wide slack, determinism is
        // what matters, not the exact binomial tail
        assert!((300..1200).contains(&hits), "{hits} hits");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::quiet(99);
        for i in 0..500 {
            let id = format!("job-{i}");
            assert!(!p.solve_panics(&id));
            assert!(!p.worker_dies(&id));
            assert!(p.routing_delay(&id).is_none());
            assert!(p.disconnect_after(&id).is_none());
        }
        let doc = "cache v1\nentry aa 1 5\nsolution v1\nend\n";
        assert_eq!(p.corrupt_snapshot(doc), doc);
    }

    #[test]
    fn chaos_writer_breaks_after_planned_writes() {
        let mut plan = FaultPlan::quiet(1);
        plan.disconnect_per_mille = 1000; // always disconnect
        let token = "session-x";
        let after = plan.disconnect_after(token).unwrap();
        let mut w = ChaosWriter::new(Vec::new(), &plan, token);
        for _ in 0..after {
            w.write_all(b"x").unwrap();
        }
        let err = w.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn corruption_only_touches_entry_lines() {
        let mut plan = FaultPlan::quiet(3);
        plan.corrupt_entry_per_mille = 1000; // rot every entry
        let doc = "cache v1\nentry aabb 1 5\nsolution v1\nspec exact\nend\n";
        let rotted = plan.corrupt_snapshot(doc);
        assert!(rotted.contains("cache v1\n"), "{rotted}");
        assert!(rotted.contains("spec exact\n"), "{rotted}");
        assert!(!rotted.contains("entry aabb"), "{rotted}");
    }
}

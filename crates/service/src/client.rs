//! Client-side resilience helpers: retrying shed submissions with
//! capped, jittered exponential backoff.
//!
//! [`Server::submit`] sheds work under overload
//! ([`SubmitError::Overloaded`]) instead of blocking forever; the
//! polite client response is to back off and resubmit. That loop —
//! bounded attempts, exponential delay, deterministic jitter so a
//! thundering herd of identical clients decorrelates — is
//! [`Server::submit_with_retry`], driven by a [`RetryPolicy`]. Wire
//! clients facing transient I/O (interrupted syscalls, timeouts,
//! resets) can reuse the same policy via [`is_transient_io`].

use crate::server::{Event, JobRequest, Server, SubmitError};
use std::sync::mpsc::Sender;
use std::time::Duration;

/// splitmix64 finalizer, for deterministic jitter without an RNG.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Backoff schedule for retrying retryable failures (shed submissions,
/// transient I/O).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, the first included. 1 means never retry.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Ceiling on any single delay (the cap in "capped jittered
    /// exponential backoff").
    pub max_delay: Duration,
    /// Jitter seed: same seed + same salt = same schedule, so tests
    /// and soak replays are reproducible; distinct clients should use
    /// distinct seeds to decorrelate.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based: the delay after
    /// the first failure is `delay_for(0, ..)`): exponential from
    /// [`RetryPolicy::base_delay`], capped at
    /// [`RetryPolicy::max_delay`], jittered deterministically into
    /// `[50%, 100%]` of the capped value by `(seed, salt, retry)`.
    pub fn delay_for(&self, retry: u32, salt: &str) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.min(20))
            .min(self.max_delay);
        let micros = exp.as_micros().min(u128::from(u64::MAX)) as u64;
        if micros == 0 {
            return Duration::ZERO;
        }
        let mut h = self.seed ^ u64::from(retry);
        for b in salt.bytes() {
            h = mix64(h ^ u64::from(b));
        }
        // jitter into [half, full]
        let half = micros / 2;
        Duration::from_micros(half + mix64(h) % (micros - half + 1))
    }
}

/// Whether an I/O error is worth retrying under a [`RetryPolicy`]
/// (flaky, not fatal): interruptions, timeouts, and peer resets.
/// `BrokenPipe` and everything else are permanent for this stream.
pub fn is_transient_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::ConnectionReset
    )
}

impl Server {
    /// [`Server::submit`], retried under `policy` when the submission
    /// is shed ([`SubmitError::Overloaded`]). Sleeps the policy's
    /// jittered backoff between attempts, counts each resubmission in
    /// [`crate::ServerStats::retries_observed`], and returns the last
    /// shed error once attempts run out. Non-retryable errors
    /// (shutdown) return immediately.
    pub fn submit_with_retry(
        &self,
        req: JobRequest,
        events: Sender<Event>,
        policy: &RetryPolicy,
    ) -> Result<(), SubmitError> {
        let mut retry = 0u32;
        loop {
            match self.submit(req.clone(), events.clone()) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && retry + 1 < policy.max_attempts.max(1) => {
                    std::thread::sleep(policy.delay_for(retry, &req.id));
                    self.note_retry();
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            seed: 1,
        };
        for retry in 0..8 {
            let d = p.delay_for(retry, "job-1");
            assert!(d <= p.max_delay, "retry {retry}: {d:?} over cap");
            assert!(
                d >= p.base_delay / 2,
                "retry {retry}: {d:?} under half-base"
            );
            // deterministic
            assert_eq!(d, p.delay_for(retry, "job-1"));
        }
        // late retries sit in the capped band [max/2, max]
        assert!(p.delay_for(7, "job-1") >= p.max_delay / 2);
        // different salts decorrelate at least somewhere in the schedule
        let diverges = (0..8).any(|r| p.delay_for(r, "job-1") != p.delay_for(r, "job-2"));
        assert!(diverges, "jitter must depend on the salt");
    }

    #[test]
    fn huge_retry_indices_do_not_overflow() {
        let p = RetryPolicy::default();
        assert!(p.delay_for(u32::MAX, "x") <= p.max_delay);
        // zero-delay policies stay zero
        let z = RetryPolicy {
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(z.delay_for(3, "x"), Duration::ZERO);
    }
}

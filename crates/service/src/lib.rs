//! # rbp-service
//!
//! Pebbling-as-a-service: a long-running batch-solve server over the
//! [`rbp_solvers`] registry, fronted by a line-oriented wire protocol
//! and a quality-aware memoization cache.
//!
//! The pieces:
//! - [`server::Server`]: bounded priority queue + worker pool +
//!   per-request budgets/cancellation, streaming [`server::Event`]s per
//!   job;
//! - [`cache::SolutionCache`]: canonical-key → best-known-solution map
//!   with monotone quality (a cached heuristic bound upgrades in place
//!   when a later solve proves optimality), keyed by
//!   [`rbp_core::Instance::canonical_key`];
//! - [`protocol`]: the `submit`/`cancel`/`stats`/`shutdown` request
//!   grammar and the response renderer, built on the `instance v1`
//!   (`rbp_core::io`) and `solution v1` ([`rbp_solvers::wire`])
//!   document formats;
//! - [`session::serve_session`]: one protocol session over any byte
//!   streams (stdin/stdout in the `rbp-serve` binary);
//! - [`client::RetryPolicy`]: capped, jittered, deterministic backoff
//!   for resubmitting shed work
//!   ([`server::Server::submit_with_retry`]);
//! - `tcp` (behind the `tcp` feature): the same sessions over a TCP
//!   listener;
//! - `chaos` (feature, test/soak builds only): seeded deterministic
//!   fault injection — solver panics, worker deaths, routing delays,
//!   mid-stream disconnects, snapshot corruption.
//!
//! Everything is std-only: threads, channels, and condvars — no async
//! runtime.
//!
//! ## Failure containment
//!
//! Every fault is contained at the narrowest boundary that can absorb
//! it: a panicking solver becomes a structured
//! [`Event::Failed`] (never a lost job), a dying worker thread is
//! respawned by its supervisor guard, an overloaded queue sheds new
//! work with a retry-after hint instead of blocking forever, and a
//! corrupt cache snapshot loads every intact entry rather than
//! aborting. See the README's "Operational hardening" section for the
//! full failure matrix.
//!
//! # Example
//! ```
//! use rbp_core::{CostModel, Instance};
//! use rbp_graph::generate;
//! use rbp_service::{Event, JobOptions, JobRequest, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig {
//!     workers: 1,
//!     queue_capacity: 8,
//!     ..ServerConfig::default()
//! });
//! let req = JobRequest {
//!     id: "demo".into(),
//!     spec: "exact".into(),
//!     instance: Instance::new(generate::chain(5), 2, CostModel::oneshot()),
//!     options: JobOptions::default(),
//! };
//! let events = server.submit_collect(req).unwrap();
//! let done = events.iter().find(|e| e.is_terminal()).unwrap();
//! match done {
//!     Event::Done { cached, solution, .. } => {
//!         assert!(!cached);
//!         assert!(solution.is_optimal());
//!     }
//!     other => panic!("{other:?}"),
//! }
//! server.shutdown();
//! ```

pub mod cache;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod server;
pub mod session;
#[cfg(feature = "tcp")]
pub mod tcp;

pub use cache::{AcceptPolicy, CacheStats, SnapshotReport, SolutionCache, CACHE_SNAPSHOT_VERSION};
pub use client::{is_transient_io, RetryPolicy};
pub use protocol::{ProtocolError, Request, RequestReader};
pub use server::{Event, JobOptions, JobRequest, Server, ServerConfig, ServerStats, SubmitError};
pub use session::{serve_session, SessionError};

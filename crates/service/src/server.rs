//! The batch-solve server: a bounded priority queue of jobs, a worker
//! pool draining it, and the [`SolutionCache`] in front of the solvers.
//!
//! ## Scheduling
//!
//! [`Server::submit`] enqueues a [`JobRequest`] onto a bounded priority
//! queue (highest [`JobOptions::priority`] first, FIFO within a
//! priority). When the queue is full the submitter **blocks** — the
//! server applies backpressure instead of dropping work, so every
//! accepted job produces a terminal event. Worker threads pop jobs and
//! drive them through cache lookup → registry dispatch → solve, sending
//! [`Event`]s to the per-job channel the submitter supplied.
//!
//! ## Cancellation
//!
//! Every job carries an `Arc<AtomicBool>` cancel flag, registered under
//! the job id. [`Server::cancel`] sets it: a still-queued job is
//! dropped at pop time with [`Event::Cancelled`]; an in-flight job
//! stops at the solver's next budget poll (the flag rides the
//! [`Budget`]), and its partial result is reported as `Cancelled`, not
//! `Done`, and is never cached.
//!
//! ## Memoization
//!
//! Results are keyed by [`Instance::canonical_key`]. A cache entry of
//! sufficient quality (per the request's [`AcceptPolicy`]) answers
//! without solving ([`Event::CacheHit`] then [`Event::Done`] with
//! `cached: true`); fresh results are inserted through
//! [`SolutionCache::insert_or_upgrade`], so a later exact solve
//! upgrades a cached heuristic bound in place.
//!
//! [`Instance::canonical_key`]: rbp_core::Instance::canonical_key

use crate::cache::{AcceptPolicy, CacheStats, SolutionCache};
use rbp_core::Instance;
use rbp_solvers::{Budget, Progress, Registry, Solution, SolveCtx};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-job options (the `key=value` tail of a `submit` line).
#[derive(Clone, Debug)]
pub struct JobOptions {
    /// Wall-clock budget for the solve.
    pub deadline: Option<Duration>,
    /// Expansion-count budget for the solve (deterministic, unlike the
    /// deadline — what tests and reproducible workloads should use).
    pub max_expansions: Option<u64>,
    /// Scheduling priority; higher runs first. Default 0.
    pub priority: i64,
    /// What cached quality may answer this request without solving.
    pub accept: AcceptPolicy,
    /// Whether to consult and populate the cache at all.
    pub use_cache: bool,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            deadline: None,
            max_expansions: None,
            priority: 0,
            accept: AcceptPolicy::Optimal,
            use_cache: true,
        }
    }
}

/// One unit of work: an instance, the registry spec to solve it with,
/// and the options.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Client-chosen id, echoed in every event for this job. Resubmitting
    /// an id re-points [`Server::cancel`] at the newest job.
    pub id: String,
    /// Registry spec (`"exact"`, `"greedy:most-red-inputs/lru"`, …).
    pub spec: String,
    /// The instance to pebble.
    pub instance: Instance,
    /// Budget, priority, and cache policy.
    pub options: JobOptions,
}

/// Lifecycle events delivered to the submitter's channel. Every
/// accepted job ends with exactly one terminal event: `Done`, `Failed`,
/// or `Cancelled`.
#[derive(Clone, Debug)]
pub enum Event {
    /// The job was accepted onto the queue.
    Queued {
        /// The job id.
        id: String,
    },
    /// The cache answered; a `Done { cached: true }` follows.
    CacheHit {
        /// The job id.
        id: String,
        /// The spec that originally produced the cached entry.
        spec: String,
    },
    /// A progress snapshot from the running solver.
    Progress {
        /// The job id.
        id: String,
        /// States expanded so far.
        states_expanded: u64,
        /// Expansion throughput since the solve started.
        states_per_sec: u64,
    },
    /// Terminal: the job produced a solution.
    Done {
        /// The job id.
        id: String,
        /// The exact spec that produced the solution
        /// ([`rbp_solvers::Solver::spec`] of the solver that ran, or of
        /// the cached producer when `cached`).
        spec: String,
        /// Whether the cache answered instead of a solver run.
        cached: bool,
        /// The (engine-validated) solution.
        solution: Solution,
    },
    /// Terminal: the job failed (bad spec, infeasible budget, …).
    Failed {
        /// The job id.
        id: String,
        /// Human-readable cause.
        error: String,
    },
    /// Terminal: the job was cancelled before or during its solve.
    Cancelled {
        /// The job id.
        id: String,
    },
}

impl Event {
    /// The job id this event belongs to.
    pub fn id(&self) -> &str {
        match self {
            Event::Queued { id }
            | Event::CacheHit { id, .. }
            | Event::Progress { id, .. }
            | Event::Done { id, .. }
            | Event::Failed { id, .. }
            | Event::Cancelled { id } => id,
        }
    }

    /// Whether this is the job's final event.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done { .. } | Event::Failed { .. } | Event::Cancelled { .. }
        )
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Server sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 resolves to `available_parallelism`).
    pub workers: usize,
    /// Queue slots before [`Server::submit`] blocks (min 1).
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
        }
    }
}

/// Point-in-time server counters ([`Server::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Jobs accepted since start.
    pub submitted: u64,
    /// Jobs that reached a terminal event.
    pub completed: u64,
    /// Solver runs actually started (cache hits and cancellations
    /// before start do not count).
    pub solves: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Cache counters.
    pub cache: CacheStats,
}

struct QueuedJob {
    priority: i64,
    seq: u64,
    req: JobRequest,
    events: Sender<Event>,
    cancel: Arc<AtomicBool>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // max-heap: higher priority first, then lower seq (FIFO)
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    open: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    cache: SolutionCache,
    registry: Registry,
    jobs: Mutex<HashMap<String, Arc<AtomicBool>>>,
    seq: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    solves: AtomicU64,
}

/// The running batch server. Dropping it without [`Server::shutdown`]
/// also drains and joins (via `Drop`), so tests cannot leak workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool with the built-in solver registry.
    pub fn start(cfg: ServerConfig) -> Server {
        Server::with_registry(cfg, Registry::with_builtins())
    }

    /// Starts the worker pool with a caller-extended registry.
    pub fn with_registry(cfg: ServerConfig, registry: Registry) -> Server {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            cfg.workers
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: cfg.queue_capacity.max(1),
            cache: SolutionCache::new(),
            registry,
            jobs: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            solves: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server {
            shared,
            workers: handles,
        }
    }

    /// Enqueues a job; its events flow to `events`. Blocks while the
    /// queue is full (backpressure). The job's `Queued` event is sent
    /// before this returns.
    pub fn submit(&self, req: JobRequest, events: Sender<Event>) -> Result<(), SubmitError> {
        let cancel = Arc::new(AtomicBool::new(false));
        let mut q = self.shared.queue.lock().unwrap();
        while q.open && q.heap.len() >= self.shared.capacity {
            q = self.shared.not_full.wait(q).unwrap();
        }
        if !q.open {
            return Err(SubmitError::ShuttingDown);
        }
        self.shared
            .jobs
            .lock()
            .unwrap()
            .insert(req.id.clone(), Arc::clone(&cancel));
        let _ = events.send(Event::Queued { id: req.id.clone() });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        q.heap.push(QueuedJob {
            priority: req.options.priority,
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            req,
            events,
            cancel,
        });
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Convenience for tests and one-shot callers: submit and get the
    /// receiving end of a fresh channel.
    pub fn submit_collect(
        &self,
        req: JobRequest,
    ) -> Result<std::sync::mpsc::Receiver<Event>, SubmitError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(req, tx)?;
        Ok(rx)
    }

    /// Requests cancellation of the newest job submitted under `id`.
    /// Returns whether such a job existed (it may already have
    /// finished; cancellation is cooperative and best-effort).
    pub fn cancel(&self, id: &str) -> bool {
        match self.shared.jobs.lock().unwrap().get(id) {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            solves: self.shared.solves.load(Ordering::Relaxed),
            queued: self.shared.queue.lock().unwrap().heap.len() as u64,
            cache: self.shared.cache.stats(),
        }
    }

    /// Shared access to the cache (for reporting and tests).
    pub fn cache(&self) -> &SolutionCache {
        &self.shared.cache
    }

    /// Stops accepting work, drains the queue (already-accepted jobs
    /// still run to their terminal event), and joins the workers.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.open = false;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.heap.pop() {
                    shared.not_full.notify_one();
                    break Some(j);
                }
                if !q.open {
                    break None;
                }
                q = shared.not_empty.wait(q).unwrap();
            }
        };
        match job {
            Some(j) => run_job(shared, j),
            None => return,
        }
    }
}

/// Drops the job's cancel-flag registration (only if it is still *this*
/// job's flag — a resubmitted id re-points the slot) and counts the
/// completion.
fn finish_job(shared: &Shared, id: &str, cancel: &Arc<AtomicBool>) {
    let mut jobs = shared.jobs.lock().unwrap();
    if jobs.get(id).is_some_and(|f| Arc::ptr_eq(f, cancel)) {
        jobs.remove(id);
    }
    drop(jobs);
    shared.completed.fetch_add(1, Ordering::Relaxed);
}

fn run_job(shared: &Shared, job: QueuedJob) {
    let QueuedJob {
        req,
        events,
        cancel,
        ..
    } = job;
    let id = req.id.clone();

    if cancel.load(Ordering::Relaxed) {
        finish_job(shared, &id, &cancel);
        let _ = events.send(Event::Cancelled { id: id.clone() });
        return;
    }

    let key = req.instance.canonical_key();
    if req.options.use_cache {
        if let Some(entry) = shared.cache.lookup(&key, req.options.accept) {
            finish_job(shared, &id, &cancel);
            let _ = events.send(Event::CacheHit {
                id: id.clone(),
                spec: entry.spec.clone(),
            });
            let _ = events.send(Event::Done {
                id: id.clone(),
                spec: entry.spec,
                cached: true,
                solution: entry.solution,
            });
            return;
        }
    }

    let solver = match shared.registry.parse(&req.spec) {
        Ok(s) => s,
        Err(e) => {
            finish_job(shared, &id, &cancel);
            let _ = events.send(Event::Failed {
                id: id.clone(),
                error: e.to_string(),
            });
            return;
        }
    };
    let spec = solver.spec();

    let mut budget = Budget::none().with_cancel(Arc::clone(&cancel));
    if let Some(d) = req.options.deadline {
        budget = budget.with_deadline(d);
    }
    if let Some(m) = req.options.max_expansions {
        budget = budget.with_max_expansions(m);
    }
    shared.solves.fetch_add(1, Ordering::Relaxed);

    // mpsc::Sender is !Sync; the observer contract requires Sync.
    let progress_tx = Mutex::new(events.clone());
    let progress_id = id.clone();
    let observer = move |p: &Progress| {
        let _ = progress_tx.lock().unwrap().send(Event::Progress {
            id: progress_id.clone(),
            states_expanded: p.states_expanded,
            states_per_sec: p.states_per_sec,
        });
    };
    let ctx = SolveCtx::with_progress(budget, &observer);

    let outcome = solver.solve_lenient(&req.instance, &ctx);
    let terminal = match outcome {
        Ok(solution) => {
            if cancel.load(Ordering::Relaxed) {
                // a cancelled solve may still degrade to a valid bound;
                // report the cancellation and keep it out of the cache
                Event::Cancelled { id: id.clone() }
            } else {
                if req.options.use_cache {
                    let scaled = solution.scaled_cost(&req.instance);
                    shared
                        .cache
                        .insert_or_upgrade(key, &spec, solution.clone(), scaled);
                }
                Event::Done {
                    id: id.clone(),
                    spec,
                    cached: false,
                    solution,
                }
            }
        }
        Err(e) => {
            if cancel.load(Ordering::Relaxed) {
                Event::Cancelled { id: id.clone() }
            } else {
                Event::Failed {
                    id: id.clone(),
                    error: e.to_string(),
                }
            }
        }
    };
    finish_job(shared, &id, &cancel);
    let _ = events.send(terminal);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_graph::generate;

    fn chain_req(id: &str, n: usize, spec: &str) -> JobRequest {
        JobRequest {
            id: id.to_string(),
            spec: spec.to_string(),
            instance: Instance::new(generate::chain(n), 2, CostModel::oneshot()),
            options: JobOptions::default(),
        }
    }

    fn terminal(rx: &std::sync::mpsc::Receiver<Event>) -> Event {
        loop {
            let ev = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("job must reach a terminal event");
            if ev.is_terminal() {
                return ev;
            }
        }
    }

    #[test]
    fn solve_then_cache_hit() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let rx = server.submit_collect(chain_req("a", 6, "exact")).unwrap();
        match terminal(&rx) {
            Event::Done { cached, spec, .. } => {
                assert!(!cached);
                assert_eq!(spec, "exact");
            }
            other => panic!("{other:?}"),
        }
        let rx = server.submit_collect(chain_req("b", 6, "exact")).unwrap();
        match terminal(&rx) {
            Event::Done { cached, .. } => assert!(cached),
            other => panic!("{other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.solves, 1, "second request must not run a solver");
        assert_eq!(stats.cache.hits, 1);
        server.shutdown();
    }

    #[test]
    fn bad_spec_fails_cleanly() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let rx = server.submit_collect(chain_req("x", 4, "exat")).unwrap();
        match terminal(&rx) {
            Event::Failed { error, .. } => assert!(error.contains("exat"), "{error}"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn infeasible_is_a_payload_not_a_fault() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
        });
        let req = JobRequest {
            id: "inf".into(),
            spec: "exact".into(),
            instance: Instance::new(generate::chain(3), 1, CostModel::oneshot()),
            options: JobOptions::default(),
        };
        let rx = server.submit_collect(req).unwrap();
        match terminal(&rx) {
            Event::Done { solution, .. } => {
                assert_eq!(solution.quality, rbp_solvers::Quality::Infeasible);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }
}

//! The batch-solve server: a bounded priority queue of jobs, a worker
//! pool draining it, and the [`SolutionCache`] in front of the solvers.
//!
//! ## Scheduling and admission control
//!
//! [`Server::submit`] enqueues a [`JobRequest`] onto a bounded priority
//! queue (highest [`JobOptions::priority`] first, FIFO within a
//! priority). When the queue is full the submitter blocks for at most
//! [`ServerConfig::admission_wait`] — bounded backpressure — and is
//! then **shed** with [`SubmitError::Overloaded`] carrying a
//! retry-after hint, so an overloaded server degrades into explicit,
//! retryable refusals instead of unbounded convoy. Every *accepted*
//! job still produces exactly one terminal event. Worker threads pop
//! jobs and drive them through cache lookup → registry dispatch →
//! solve, sending [`Event`]s to the per-job channel the submitter
//! supplied. Deadlines are clocked from **submission**, not solve
//! start: time spent queued consumes the job's budget, so a stale job
//! degrades promptly instead of burning a full budget after the client
//! stopped caring.
//!
//! ## Supervision
//!
//! Worker threads are supervised. The solve itself runs under
//! `catch_unwind` (per-job search state makes unwinding locally safe —
//! see [`rbp_solvers::Solver::solve_caught`]), so a panicking solver
//! yields a structured [`SolveError::Panicked`] and a terminal
//! [`Event::Failed`], and the worker lives on. If a worker thread dies
//! anyway (a panic outside the guarded solve), two drop guards fire:
//! the in-flight job still gets its terminal `Failed` event, and a
//! replacement worker is spawned before the dead one unwinds — no job
//! is ever silently lost, and [`ServerStats::worker_restarts`] counts
//! the respawns. Lock poisoning is tolerated everywhere (queue state
//! is consistent at every unlock point, so a poisoned mutex is
//! recovered, not propagated).
//!
//! [`SolveError::Panicked`]: rbp_solvers::SolveError::Panicked
//!
//! ## Cancellation
//!
//! Every job carries an `Arc<AtomicBool>` cancel flag, registered under
//! the job id. [`Server::cancel`] sets it: a still-queued job is
//! dropped at pop time with [`Event::Cancelled`]; an in-flight job
//! stops at the solver's next budget poll (the flag rides the
//! [`Budget`]), and its partial result is reported as `Cancelled`, not
//! `Done`, and is never cached.
//!
//! ## Memoization
//!
//! Results are keyed by [`Instance::canonical_key`]. A cache entry of
//! sufficient quality (per the request's [`AcceptPolicy`]) answers
//! without solving ([`Event::CacheHit`] then [`Event::Done`] with
//! `cached: true`); fresh results are inserted through
//! [`SolutionCache::insert_or_upgrade`], so a later exact solve
//! upgrades a cached heuristic bound in place.
//!
//! [`Instance::canonical_key`]: rbp_core::Instance::canonical_key

use crate::cache::{AcceptPolicy, CacheStats, SolutionCache};
use rbp_core::Instance;
use rbp_solvers::{
    panic_payload_to_string, Budget, Progress, Registry, Solution, SolveCtx, SolveError,
};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks a mutex, recovering from poisoning. Every critical section in
/// this module leaves its data consistent at the moment of unlock (and
/// the solve itself never runs under a lock), so a poisoned mutex —
/// possible only when a supervised worker dies mid-section — is safe to
/// recover rather than propagate: propagating would turn one dead
/// worker into a poisoned server.
fn lock_sane<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-job options (the `key=value` tail of a `submit` line).
#[derive(Clone, Debug)]
pub struct JobOptions {
    /// Wall-clock budget for the solve.
    pub deadline: Option<Duration>,
    /// Expansion-count budget for the solve (deterministic, unlike the
    /// deadline — what tests and reproducible workloads should use).
    pub max_expansions: Option<u64>,
    /// Scheduling priority; higher runs first. Default 0.
    pub priority: i64,
    /// What cached quality may answer this request without solving.
    pub accept: AcceptPolicy,
    /// Whether to consult and populate the cache at all.
    pub use_cache: bool,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            deadline: None,
            max_expansions: None,
            priority: 0,
            accept: AcceptPolicy::Optimal,
            use_cache: true,
        }
    }
}

/// One unit of work: an instance, the registry spec to solve it with,
/// and the options.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Client-chosen id, echoed in every event for this job. Resubmitting
    /// an id re-points [`Server::cancel`] at the newest job.
    pub id: String,
    /// Registry spec (`"exact"`, `"greedy:most-red-inputs/lru"`, …).
    pub spec: String,
    /// The instance to pebble.
    pub instance: Instance,
    /// Budget, priority, and cache policy.
    pub options: JobOptions,
}

/// Lifecycle events delivered to the submitter's channel. Every
/// accepted job ends with exactly one terminal event: `Done`, `Failed`,
/// or `Cancelled`.
#[derive(Clone, Debug)]
pub enum Event {
    /// The job was accepted onto the queue.
    Queued {
        /// The job id.
        id: String,
    },
    /// The cache answered; a `Done { cached: true }` follows.
    CacheHit {
        /// The job id.
        id: String,
        /// The spec that originally produced the cached entry.
        spec: String,
    },
    /// A progress snapshot from the running solver.
    Progress {
        /// The job id.
        id: String,
        /// States expanded so far.
        states_expanded: u64,
        /// Expansion throughput since the solve started.
        states_per_sec: u64,
    },
    /// Terminal: the job produced a solution.
    Done {
        /// The job id.
        id: String,
        /// The exact spec that produced the solution
        /// ([`rbp_solvers::Solver::spec`] of the solver that ran, or of
        /// the cached producer when `cached`).
        spec: String,
        /// Whether the cache answered instead of a solver run.
        cached: bool,
        /// The (engine-validated) solution.
        solution: Solution,
    },
    /// Terminal: the job failed (bad spec, infeasible budget, …).
    Failed {
        /// The job id.
        id: String,
        /// Human-readable cause.
        error: String,
    },
    /// Terminal: the job was cancelled before or during its solve.
    Cancelled {
        /// The job id.
        id: String,
    },
}

impl Event {
    /// The job id this event belongs to.
    pub fn id(&self) -> &str {
        match self {
            Event::Queued { id }
            | Event::CacheHit { id, .. }
            | Event::Progress { id, .. }
            | Event::Done { id, .. }
            | Event::Failed { id, .. }
            | Event::Cancelled { id } => id,
        }
    }

    /// Whether this is the job's final event.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Done { .. } | Event::Failed { .. } | Event::Cancelled { .. }
        )
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// The queue stayed full for the whole
    /// [`ServerConfig::admission_wait`]: the job was shed. The client
    /// should back off for about `retry_after` and resubmit (see
    /// [`Server::submit_with_retry`]).
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after: Duration,
    },
}

impl SubmitError {
    /// Whether a retry after backoff may succeed (overload is
    /// transient; shutdown is not).
    pub fn is_retryable(&self) -> bool {
        matches!(self, SubmitError::Overloaded { .. })
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => f.write_str("server is shutting down"),
            SubmitError::Overloaded { retry_after } => write!(
                f,
                "server overloaded, retry after {} ms",
                retry_after.as_millis()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Server sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 resolves to `available_parallelism`).
    pub workers: usize,
    /// Queue slots before [`Server::submit`] starts waiting (min 1).
    pub queue_capacity: usize,
    /// How long [`Server::submit`] waits on a full queue before
    /// shedding the job with [`SubmitError::Overloaded`]. Zero sheds
    /// immediately (pure load shedding); large values approximate the
    /// old block-forever backpressure.
    pub admission_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 64,
            admission_wait: Duration::from_secs(1),
        }
    }
}

/// Point-in-time server counters ([`Server::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Jobs accepted since start.
    pub submitted: u64,
    /// Jobs that reached a terminal event.
    pub completed: u64,
    /// Solver runs actually started (cache hits and cancellations
    /// before start do not count).
    pub solves: u64,
    /// Jobs currently waiting in the queue.
    pub queued: u64,
    /// Jobs that failed because a solve panicked (the panic was
    /// contained; the worker survived or was restarted).
    pub panics: u64,
    /// Worker threads respawned after dying mid-job.
    pub worker_restarts: u64,
    /// Submissions refused with [`SubmitError::Overloaded`].
    pub shed: u64,
    /// Resubmit attempts made through [`Server::submit_with_retry`]
    /// after a shed (first attempts do not count).
    pub retries_observed: u64,
    /// Cache counters.
    pub cache: CacheStats,
}

struct QueuedJob {
    priority: i64,
    seq: u64,
    req: JobRequest,
    events: Sender<Event>,
    cancel: Arc<AtomicBool>,
    /// When the job was accepted; deadlines are measured from here.
    submitted_at: Instant,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // max-heap: higher priority first, then lower seq (FIFO)
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    open: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    admission_wait: Duration,
    cache: SolutionCache,
    registry: Registry,
    jobs: Mutex<HashMap<String, Arc<AtomicBool>>>,
    /// Worker join handles; respawned workers push their own handle
    /// here, so shutdown joins replacements too.
    workers: Mutex<Vec<JoinHandle<()>>>,
    seq: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    solves: AtomicU64,
    panics: AtomicU64,
    worker_restarts: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    #[cfg(feature = "chaos")]
    faults: Option<crate::chaos::FaultPlan>,
}

/// The running batch server. Dropping it without [`Server::shutdown`]
/// also drains and joins (via `Drop`), so tests cannot leak workers.
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Starts the worker pool with the built-in solver registry.
    pub fn start(cfg: ServerConfig) -> Server {
        Server::with_registry(cfg, Registry::with_builtins())
    }

    /// Starts the worker pool with a caller-extended registry.
    pub fn with_registry(cfg: ServerConfig, registry: Registry) -> Server {
        Server::spawn(cfg, Server::new_shared(&cfg, registry))
    }

    /// Starts a server whose service paths consult a deterministic
    /// [`crate::chaos::FaultPlan`] — the entry point of the chaos soak
    /// harness. Only available with the `chaos` feature.
    #[cfg(feature = "chaos")]
    pub fn with_faults(
        cfg: ServerConfig,
        registry: Registry,
        faults: crate::chaos::FaultPlan,
    ) -> Server {
        let mut shared = Server::new_shared(&cfg, registry);
        shared.faults = Some(faults);
        Server::spawn(cfg, shared)
    }

    fn new_shared(cfg: &ServerConfig, registry: Registry) -> Shared {
        Shared {
            queue: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: cfg.queue_capacity.max(1),
            admission_wait: cfg.admission_wait,
            cache: SolutionCache::new(),
            registry,
            jobs: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            solves: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            #[cfg(feature = "chaos")]
            faults: None,
        }
    }

    fn spawn(cfg: ServerConfig, shared: Shared) -> Server {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            cfg.workers
        };
        let shared = Arc::new(shared);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        *lock_sane(&shared.workers) = handles;
        Server { shared }
    }

    /// Enqueues a job; its events flow to `events`. Waits up to
    /// [`ServerConfig::admission_wait`] while the queue is full, then
    /// sheds with [`SubmitError::Overloaded`]. The job's `Queued` event
    /// is sent before this returns.
    pub fn submit(&self, req: JobRequest, events: Sender<Event>) -> Result<(), SubmitError> {
        let cancel = Arc::new(AtomicBool::new(false));
        let wait_started = Instant::now();
        let mut q = lock_sane(&self.shared.queue);
        while q.open && q.heap.len() >= self.shared.capacity {
            let Some(remaining) = self
                .shared
                .admission_wait
                .checked_sub(wait_started.elapsed())
            else {
                drop(q);
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded {
                    retry_after: retry_after_hint(self.shared.admission_wait),
                });
            };
            q = self
                .shared
                .not_full
                .wait_timeout(q, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        if !q.open {
            return Err(SubmitError::ShuttingDown);
        }
        lock_sane(&self.shared.jobs).insert(req.id.clone(), Arc::clone(&cancel));
        let _ = events.send(Event::Queued { id: req.id.clone() });
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        q.heap.push(QueuedJob {
            priority: req.options.priority,
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            req,
            events,
            cancel,
            submitted_at: Instant::now(),
        });
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Convenience for tests and one-shot callers: submit and get the
    /// receiving end of a fresh channel.
    pub fn submit_collect(
        &self,
        req: JobRequest,
    ) -> Result<std::sync::mpsc::Receiver<Event>, SubmitError> {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(req, tx)?;
        Ok(rx)
    }

    /// Requests cancellation of the newest job submitted under `id`.
    /// Returns whether such a job existed (it may already have
    /// finished; cancellation is cooperative and best-effort).
    pub fn cancel(&self, id: &str) -> bool {
        match lock_sane(&self.shared.jobs).get(id) {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            solves: self.shared.solves.load(Ordering::Relaxed),
            queued: lock_sane(&self.shared.queue).heap.len() as u64,
            panics: self.shared.panics.load(Ordering::Relaxed),
            worker_restarts: self.shared.worker_restarts.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            retries_observed: self.shared.retries.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
        }
    }

    /// Counts one observed resubmission (used by the retry helper).
    pub(crate) fn note_retry(&self) {
        self.shared.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Shared access to the cache (for reporting and tests).
    pub fn cache(&self) -> &SolutionCache {
        &self.shared.cache
    }

    /// Stops accepting work, drains the queue (already-accepted jobs
    /// still run to their terminal event), and joins the workers.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut q = lock_sane(&self.shared.queue);
            q.open = false;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        // respawned workers push fresh handles while we join, so drain
        // until the list stays empty (respawn stops once the queue is
        // closed and drained, so this terminates)
        loop {
            let handles: Vec<_> = {
                let mut w = lock_sane(&self.shared.workers);
                w.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

/// What [`SubmitError::Overloaded`] suggests as backoff: the admission
/// wait itself (floored for zero-wait pure-shedding servers), i.e. "the
/// queue did not drain a slot in this long, come back after as much".
fn retry_after_hint(admission_wait: Duration) -> Duration {
    admission_wait.max(Duration::from_millis(10))
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Supervises one worker thread: if the thread unwinds (a panic that
/// escaped the solve guard), this drop spawns a replacement *before*
/// the dead worker finishes unwinding — unless the server is already
/// closed with an empty queue, in which case death is indistinguishable
/// from a normal exit and nothing needs the replacement.
struct WorkerGuard {
    shared: Arc<Shared>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let respawn = {
            let q = lock_sane(&self.shared.queue);
            q.open || !q.heap.is_empty()
        };
        if respawn {
            self.shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::spawn(move || worker_loop(shared));
            lock_sane(&self.shared.workers).push(handle);
        }
    }
}

/// Guarantees the in-flight job a terminal event: if [`run_job`]
/// unwinds before reaching one of its own terminal paths, this drop
/// delivers `Failed` (and the completion bookkeeping) on the way out.
/// Normal completion goes through [`JobGuard::complete`], which disarms
/// the guard.
struct JobGuard<'a> {
    shared: &'a Shared,
    id: String,
    events: Sender<Event>,
    cancel: Arc<AtomicBool>,
    armed: bool,
}

impl JobGuard<'_> {
    /// Sends the job's terminal event and disarms the guard.
    fn complete(&mut self, terminal: Event) {
        debug_assert!(terminal.is_terminal());
        self.armed = false;
        finish_job(self.shared, &self.id, &self.cancel);
        let _ = self.events.send(terminal);
    }
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.panics.fetch_add(1, Ordering::Relaxed);
            finish_job(self.shared, &self.id, &self.cancel);
            let _ = self.events.send(Event::Failed {
                id: self.id.clone(),
                error: "worker thread died mid-job; worker restarted".to_string(),
            });
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let _supervisor = WorkerGuard {
        shared: Arc::clone(&shared),
    };
    loop {
        let job = {
            let mut q = lock_sane(&shared.queue);
            loop {
                if let Some(j) = q.heap.pop() {
                    shared.not_full.notify_one();
                    break Some(j);
                }
                if !q.open {
                    break None;
                }
                q = shared
                    .not_empty
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(j) => run_job(&shared, j),
            None => return,
        }
    }
}

/// Drops the job's cancel-flag registration (only if it is still *this*
/// job's flag — a resubmitted id re-points the slot) and counts the
/// completion.
fn finish_job(shared: &Shared, id: &str, cancel: &Arc<AtomicBool>) {
    let mut jobs = lock_sane(&shared.jobs);
    if jobs.get(id).is_some_and(|f| Arc::ptr_eq(f, cancel)) {
        jobs.remove(id);
    }
    drop(jobs);
    shared.completed.fetch_add(1, Ordering::Relaxed);
}

fn run_job(shared: &Shared, job: QueuedJob) {
    let QueuedJob {
        req,
        events,
        cancel,
        submitted_at,
        ..
    } = job;
    let id = req.id.clone();
    let mut guard = JobGuard {
        shared,
        id: id.clone(),
        events: events.clone(),
        cancel: Arc::clone(&cancel),
        armed: true,
    };

    #[cfg(feature = "chaos")]
    if let Some(f) = shared.faults.as_ref() {
        if let Some(delay) = f.routing_delay(&id) {
            std::thread::sleep(delay);
        }
        // an unguarded panic: kills this worker thread, exercising the
        // JobGuard (terminal Failed) and WorkerGuard (respawn) paths
        if f.worker_dies(&id) {
            panic!("chaos: worker killed while routing job {id}");
        }
    }

    if cancel.load(Ordering::Relaxed) {
        guard.complete(Event::Cancelled { id });
        return;
    }

    let key = req.instance.canonical_key();
    if req.options.use_cache {
        if let Some(entry) = shared.cache.lookup(&key, req.options.accept) {
            let _ = events.send(Event::CacheHit {
                id: id.clone(),
                spec: entry.spec.clone(),
            });
            guard.complete(Event::Done {
                id,
                spec: entry.spec,
                cached: true,
                solution: entry.solution,
            });
            return;
        }
    }

    let solver = match shared.registry.parse(&req.spec) {
        Ok(s) => s,
        Err(e) => {
            guard.complete(Event::Failed {
                id,
                error: e.to_string(),
            });
            return;
        }
    };
    let spec = solver.spec();

    let mut budget = Budget::none().with_cancel(Arc::clone(&cancel));
    if let Some(d) = req.options.deadline {
        // clocked from *submission*: queue wait consumes the budget, so
        // a job that waited past its deadline degrades at the solver's
        // first poll instead of burning a fresh full budget
        budget = budget.with_deadline_at(submitted_at + d);
    }
    if let Some(m) = req.options.max_expansions {
        budget = budget.with_max_expansions(m);
    }
    shared.solves.fetch_add(1, Ordering::Relaxed);

    // mpsc::Sender is !Sync; the observer contract requires Sync.
    let progress_tx = Mutex::new(events.clone());
    let progress_id = id.clone();
    let observer = move |p: &Progress| {
        let _ = lock_sane(&progress_tx).send(Event::Progress {
            id: progress_id.clone(),
            states_expanded: p.states_expanded,
            states_per_sec: p.states_per_sec,
        });
    };
    let ctx = SolveCtx::with_progress(budget, &observer);

    // the solve runs under catch_unwind (same containment contract as
    // `Solver::solve_caught`: all search state is per-job, so unwinding
    // is locally safe); a panicking solver costs one job, not a worker
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "chaos")]
        if let Some(f) = shared.faults.as_ref() {
            if f.solve_panics(&id) {
                panic!("chaos: injected solver panic in job {id}");
            }
        }
        solver.solve_lenient(&req.instance, &ctx)
    }))
    .unwrap_or_else(|payload| {
        Err(SolveError::Panicked {
            payload: panic_payload_to_string(payload),
        })
    });

    let terminal = match outcome {
        Ok(solution) => {
            if cancel.load(Ordering::Relaxed) {
                // a cancelled solve may still degrade to a valid bound;
                // report the cancellation and keep it out of the cache
                Event::Cancelled { id }
            } else {
                if req.options.use_cache {
                    let scaled = solution.scaled_cost(&req.instance);
                    shared
                        .cache
                        .insert_or_upgrade(key, &spec, solution.clone(), scaled);
                }
                Event::Done {
                    id,
                    spec,
                    cached: false,
                    solution,
                }
            }
        }
        Err(e) => {
            if matches!(e, SolveError::Panicked { .. }) {
                shared.panics.fetch_add(1, Ordering::Relaxed);
            }
            if cancel.load(Ordering::Relaxed) && !matches!(e, SolveError::Panicked { .. }) {
                Event::Cancelled { id }
            } else {
                Event::Failed {
                    id,
                    error: e.to_string(),
                }
            }
        }
    };
    guard.complete(terminal);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_graph::generate;

    fn chain_req(id: &str, n: usize, spec: &str) -> JobRequest {
        JobRequest {
            id: id.to_string(),
            spec: spec.to_string(),
            instance: Instance::new(generate::chain(n), 2, CostModel::oneshot()),
            options: JobOptions::default(),
        }
    }

    fn terminal(rx: &std::sync::mpsc::Receiver<Event>) -> Event {
        loop {
            let ev = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("job must reach a terminal event");
            if ev.is_terminal() {
                return ev;
            }
        }
    }

    #[test]
    fn solve_then_cache_hit() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        });
        let rx = server.submit_collect(chain_req("a", 6, "exact")).unwrap();
        match terminal(&rx) {
            Event::Done { cached, spec, .. } => {
                assert!(!cached);
                assert_eq!(spec, "exact");
            }
            other => panic!("{other:?}"),
        }
        let rx = server.submit_collect(chain_req("b", 6, "exact")).unwrap();
        match terminal(&rx) {
            Event::Done { cached, .. } => assert!(cached),
            other => panic!("{other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.solves, 1, "second request must not run a solver");
        assert_eq!(stats.cache.hits, 1);
        server.shutdown();
    }

    #[test]
    fn bad_spec_fails_cleanly() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let rx = server.submit_collect(chain_req("x", 4, "exat")).unwrap();
        match terminal(&rx) {
            Event::Failed { error, .. } => assert!(error.contains("exat"), "{error}"),
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    /// A solver that panics inside `solve` — per-job state only, so the
    /// containment contract of the solve guard applies.
    struct Bomb;
    impl rbp_solvers::Solver for Bomb {
        fn name(&self) -> &str {
            "bomb"
        }
        fn solve(
            &self,
            _: &Instance,
            _: &rbp_solvers::SolveCtx,
        ) -> Result<rbp_solvers::Solution, SolveError> {
            panic!("bomb solver detonated");
        }
    }

    fn registry_with_bomb() -> Registry {
        let mut reg = Registry::with_builtins();
        reg.register("bomb", "test: panics inside solve", |_| Ok(Box::new(Bomb)));
        reg
    }

    /// A solver that blocks until told to go — lets tests hold the
    /// single worker busy deterministically.
    struct Gate(Arc<(Mutex<bool>, Condvar)>);
    impl rbp_solvers::Solver for Gate {
        fn name(&self) -> &str {
            "gate"
        }
        fn solve(
            &self,
            instance: &Instance,
            ctx: &rbp_solvers::SolveCtx,
        ) -> Result<rbp_solvers::Solution, SolveError> {
            let (lock, cv) = &*self.0;
            let mut open = lock_sane(lock);
            while !*open {
                open = cv.wait(open).unwrap_or_else(PoisonError::into_inner);
            }
            drop(open);
            rbp_solvers::GreedySolver::new().solve(instance, ctx)
        }
    }

    fn registry_with_gate(gate: Arc<(Mutex<bool>, Condvar)>) -> Registry {
        let mut reg = Registry::with_builtins();
        reg.register(
            "gate",
            "test: blocks until opened, then greedy",
            move |_| Ok(Box::new(Gate(Arc::clone(&gate)))),
        );
        reg
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        *lock_sane(&gate.0) = true;
        gate.1.notify_all();
    }

    #[test]
    fn a_panicking_solver_is_a_failed_event_not_a_lost_job() {
        let server = Server::with_registry(
            ServerConfig {
                workers: 1,
                queue_capacity: 4,
                ..ServerConfig::default()
            },
            registry_with_bomb(),
        );
        let rx = server.submit_collect(chain_req("boom", 4, "bomb")).unwrap();
        match terminal(&rx) {
            Event::Failed { error, .. } => {
                assert!(error.contains("panicked"), "{error}");
                assert!(error.contains("bomb solver detonated"), "{error}");
            }
            other => panic!("{other:?}"),
        }
        // the worker survived (panic was caught inside the solve guard):
        // the next job on the same single worker completes normally
        let rx = server.submit_collect(chain_req("ok", 4, "exact")).unwrap();
        assert!(matches!(terminal(&rx), Event::Done { .. }));
        let stats = server.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(
            stats.worker_restarts, 0,
            "solve-guard panics keep the worker"
        );
        assert_eq!(stats.completed, 2, "no job lost");
        server.shutdown();
    }

    #[test]
    fn a_full_queue_sheds_after_the_admission_wait() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let server = Server::with_registry(
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                admission_wait: Duration::from_millis(40),
            },
            registry_with_gate(Arc::clone(&gate)),
        );
        // occupy the only worker …
        let rx_busy = server.submit_collect(chain_req("busy", 4, "gate")).unwrap();
        let wait_deadline = Instant::now() + Duration::from_secs(30);
        while !lock_sane(&server.shared.queue).heap.is_empty() {
            assert!(Instant::now() < wait_deadline, "worker never picked up");
            std::thread::sleep(Duration::from_millis(1));
        }
        // … fill the queue …
        let rx_q = server
            .submit_collect(chain_req("queued", 4, "gate"))
            .unwrap();
        // … and the next submission sheds after the bounded wait
        let started = Instant::now();
        let err = server
            .submit_collect(chain_req("extra", 4, "exact"))
            .expect_err("full queue past the admission wait must shed");
        match err {
            SubmitError::Overloaded { retry_after } => {
                assert!(err_is_retryable(&err));
                assert!(retry_after >= Duration::from_millis(10));
            }
            other => panic!("{other:?}"),
        }
        assert!(
            started.elapsed() >= Duration::from_millis(40),
            "shed must come after the admission wait, not immediately"
        );
        assert_eq!(server.stats().shed, 1);
        // shed jobs get no events; accepted jobs still finish
        open_gate(&gate);
        assert!(matches!(terminal(&rx_busy), Event::Done { .. }));
        assert!(matches!(terminal(&rx_q), Event::Done { .. }));
        server.shutdown();
    }

    fn err_is_retryable(e: &SubmitError) -> bool {
        e.is_retryable()
    }

    #[test]
    fn shed_then_retry_succeeds_once_the_queue_drains() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let server = Server::with_registry(
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                admission_wait: Duration::from_millis(20),
            },
            registry_with_gate(Arc::clone(&gate)),
        );
        let rx_busy = server.submit_collect(chain_req("busy", 4, "gate")).unwrap();
        let wait_deadline = Instant::now() + Duration::from_secs(30);
        while !lock_sane(&server.shared.queue).heap.is_empty() {
            assert!(Instant::now() < wait_deadline, "worker never picked up");
            std::thread::sleep(Duration::from_millis(1));
        }
        let rx_q = server
            .submit_collect(chain_req("queued", 4, "exact"))
            .unwrap();
        // open the gate shortly after the first shed so a retry can land
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                open_gate(&gate);
            })
        };
        let (tx, rx_retry) = std::sync::mpsc::channel();
        let policy = crate::client::RetryPolicy {
            max_attempts: 50,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            seed: 7,
        };
        server
            .submit_with_retry(chain_req("retried", 4, "exact"), tx, &policy)
            .expect("retries must land once the queue drains");
        opener.join().unwrap();
        assert!(matches!(terminal(&rx_busy), Event::Done { .. }));
        assert!(matches!(terminal(&rx_q), Event::Done { .. }));
        assert!(matches!(terminal(&rx_retry), Event::Done { .. }));
        let stats = server.stats();
        assert!(stats.shed >= 1, "at least the first attempt was shed");
        assert!(stats.retries_observed >= 1);
        assert_eq!(stats.completed, 3);
        server.shutdown();
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn a_dying_worker_fails_the_job_terminally_and_respawns() {
        let mut faults = crate::chaos::FaultPlan::quiet(11);
        faults.worker_death_per_mille = 1000; // every routed job kills its worker
        let server = Server::with_faults(
            ServerConfig {
                workers: 1,
                queue_capacity: 4,
                ..ServerConfig::default()
            },
            Registry::with_builtins(),
            faults,
        );
        for i in 0..3 {
            let rx = server
                .submit_collect(chain_req(&format!("doomed-{i}"), 4, "exact"))
                .unwrap();
            match terminal(&rx) {
                Event::Failed { error, .. } => {
                    assert!(error.contains("worker thread died"), "{error}")
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            server.stats().completed,
            3,
            "every doomed job got its terminal event"
        );
        // the Failed event is sent while the worker is still unwinding;
        // the respawn (and its counter) lands moments later — poll
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().worker_restarts < 3 {
            assert!(
                Instant::now() < deadline,
                "each death must respawn a worker"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        server.shutdown(); // must join the respawned workers too
    }

    #[test]
    fn infeasible_is_a_payload_not_a_fault() {
        let server = Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let req = JobRequest {
            id: "inf".into(),
            spec: "exact".into(),
            instance: Instance::new(generate::chain(3), 1, CostModel::oneshot()),
            options: JobOptions::default(),
        };
        let rx = server.submit_collect(req).unwrap();
        match terminal(&rx) {
            Event::Done { solution, .. } => {
                assert_eq!(solution.quality, rbp_solvers::Quality::Infeasible);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }
}

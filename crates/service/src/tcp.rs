//! TCP front end (feature `tcp`): the same session loop as
//! stdin/stdout, one thread per connection, all connections sharing one
//! [`Server`] — and therefore one cache and one solver pool.

use crate::server::Server;
use crate::session::serve_session;
use std::io::BufReader;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;

/// Binds `addr` and serves protocol sessions until the process exits.
/// Each accepted connection runs [`serve_session`] on its own thread
/// against the shared server.
pub fn serve_tcp(addr: impl ToSocketAddrs, server: Arc<Server>) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    serve_on(listener, server)
}

/// Serves sessions on an already-bound listener (what tests use: bind
/// to port 0, read back the local address, connect).
pub fn serve_on(listener: TcpListener, server: Arc<Server>) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let _ = serve_session(reader, stream, &server);
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use rbp_core::{write_instance, CostModel, Instance};
    use rbp_graph::generate;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn tcp_session_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Arc::new(Server::start(ServerConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServerConfig::default()
        }));
        {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let _ = serve_on(listener, server);
            });
        }

        let mut conn = TcpStream::connect(addr).unwrap();
        let inst = Instance::new(generate::chain(5), 2, CostModel::oneshot());
        write!(conn, "submit t1 exact\n{}shutdown\n", write_instance(&inst)).unwrap();
        let mut lines = Vec::new();
        for line in BufReader::new(conn.try_clone().unwrap()).lines() {
            lines.push(line.unwrap());
        }
        let text = lines.join("\n");
        assert!(text.contains("queued t1"), "{text}");
        assert!(text.contains("result t1 spec=exact cached=false"), "{text}");
        assert!(lines.last().unwrap() == "bye", "{text}");
    }
}

//! The quality-aware memoization cache: canonical instance key →
//! best-known [`Solution`].
//!
//! Keys come from [`Instance::canonical_key`], so two submissions of
//! the same instance — even under a node relabeling, when the
//! refinement individualizes — land in the same slot. Entries carry a
//! quality rank, and [`SolutionCache::insert_or_upgrade`] only ever
//! *improves* a slot: a proved [`Quality::Optimal`] (or
//! [`Quality::Infeasible`]) result is final; an
//! [`Quality::UpperBound`] is replaced by any cheaper bound, any
//! tighter lower bound at equal cost, and any proved result.
//!
//! Whether a cached entry can answer a request without re-solving is
//! the *request's* choice ([`AcceptPolicy`]): by default only proved
//! entries short-circuit, so a client asking for `exact` never gets a
//! heuristic bound just because one is cached; `accept=bound` opts in
//! to serving cached upper bounds.
//!
//! [`Instance::canonical_key`]: rbp_core::Instance::canonical_key

use rbp_core::CanonicalKey;
use rbp_solvers::{Quality, Solution};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What cached quality suffices to answer a request without solving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AcceptPolicy {
    /// Only proved results ([`Quality::Optimal`] /
    /// [`Quality::Infeasible`]) short-circuit (the default).
    #[default]
    Optimal,
    /// Any cached entry short-circuits, including heuristic
    /// [`Quality::UpperBound`]s.
    Bound,
}

/// One cached result: the best solution known for an instance, the
/// registry spec that produced it, and its scaled cost (computed by the
/// inserter, which holds the instance; the cache itself never needs the
/// instance back).
#[derive(Clone, Debug)]
pub struct CachedEntry {
    /// The best-known solution.
    pub solution: Solution,
    /// The registry spec that produced it.
    pub spec: String,
    /// `solution.cost` scaled by the instance's model ε (the comparison
    /// key for upper-bound upgrades).
    pub scaled_cost: u128,
}

/// Counters describing cache behaviour since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing acceptable.
    pub misses: u64,
    /// Entries created for a previously unseen key.
    pub insertions: u64,
    /// Entries replaced by a strictly better result.
    pub upgrades: u64,
    /// Live entries.
    pub entries: u64,
}

/// A thread-safe canonical-key → best-solution map with monotone
/// quality: entries only improve.
#[derive(Default)]
pub struct SolutionCache {
    map: Mutex<HashMap<CanonicalKey, CachedEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    upgrades: AtomicU64,
}

/// Quality rank for upgrade decisions: higher wins at equal cost class.
fn rank(q: &Quality) -> u8 {
    match q {
        Quality::UpperBound { .. } => 0,
        Quality::Optimal | Quality::Infeasible => 1,
    }
}

/// Whether `candidate` (at `candidate_cost`) is strictly better than
/// `incumbent`: proved beats bounded; among bounds, cheaper cost beats,
/// then a tighter lower bound at equal cost.
fn improves(candidate: &Solution, candidate_cost: u128, incumbent: &CachedEntry) -> bool {
    let (new_rank, old_rank) = (rank(&candidate.quality), rank(&incumbent.solution.quality));
    if new_rank != old_rank {
        return new_rank > old_rank;
    }
    if new_rank == 1 {
        return false; // both proved: nothing left to improve
    }
    if candidate_cost != incumbent.scaled_cost {
        return candidate_cost < incumbent.scaled_cost;
    }
    match (&candidate.quality, &incumbent.solution.quality) {
        (Quality::UpperBound { lower_bound: new }, Quality::UpperBound { lower_bound: old }) => {
            new > old
        }
        _ => false,
    }
}

impl SolutionCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolutionCache::default()
    }

    /// Looks up `key`; returns a clone of the entry when its quality
    /// satisfies `accept`. Counts a hit or a miss either way.
    pub fn lookup(&self, key: &CanonicalKey, accept: AcceptPolicy) -> Option<CachedEntry> {
        let map = self.map.lock().unwrap();
        let found = map.get(key).filter(|e| match accept {
            AcceptPolicy::Optimal => rank(&e.solution.quality) == 1,
            AcceptPolicy::Bound => true,
        });
        match found {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a fresh result, or upgrades the incumbent when the new
    /// result is strictly better (see module docs). Returns `true` when
    /// the slot changed.
    pub fn insert_or_upgrade(
        &self,
        key: CanonicalKey,
        spec: &str,
        solution: Solution,
        scaled_cost: u128,
    ) -> bool {
        let mut map = self.map.lock().unwrap();
        match map.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(CachedEntry {
                    solution,
                    spec: spec.to_string(),
                    scaled_cost,
                });
                self.insertions.fetch_add(1, Ordering::Relaxed);
                true
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if improves(&solution, scaled_cost, slot.get()) {
                    slot.insert(CachedEntry {
                        solution,
                        spec: spec.to_string(),
                        scaled_cost,
                    });
                    self.upgrades.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            entries: self.map.lock().unwrap().len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_graph::generate;
    use rbp_solvers::Stats;

    fn key_of(n: usize) -> CanonicalKey {
        Instance::new(generate::chain(n), 2, CostModel::base()).canonical_key()
    }

    fn sol(quality: Quality) -> Solution {
        Solution {
            trace: rbp_core::Pebbling::new(),
            cost: rbp_core::Cost::ZERO,
            quality,
            stats: Stats::new(),
        }
    }

    #[test]
    fn optimal_policy_skips_bounds_and_bound_policy_serves_them() {
        let cache = SolutionCache::new();
        let key = key_of(4);
        cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 2 }),
            10,
        );
        assert!(cache.lookup(&key, AcceptPolicy::Optimal).is_none());
        assert!(cache.lookup(&key, AcceptPolicy::Bound).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn upper_bounds_upgrade_to_optimal_but_never_back() {
        let cache = SolutionCache::new();
        let key = key_of(5);
        assert!(cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 2 }),
            10
        ));
        // cheaper bound upgrades
        assert!(cache.insert_or_upgrade(
            key,
            "beam:8",
            sol(Quality::UpperBound { lower_bound: 2 }),
            8
        ));
        // equal-cost tighter lower bound upgrades
        assert!(cache.insert_or_upgrade(
            key,
            "beam:16",
            sol(Quality::UpperBound { lower_bound: 4 }),
            8
        ));
        // worse bound does not
        assert!(!cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 1 }),
            12
        ));
        // proved result wins
        assert!(cache.insert_or_upgrade(key, "exact", sol(Quality::Optimal), 8));
        // and is final
        assert!(!cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 5 }),
            6
        ));
        let entry = cache.lookup(&key, AcceptPolicy::Optimal).unwrap();
        assert_eq!(entry.spec, "exact");
        assert_eq!(cache.stats().upgrades, 3);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn distinct_instances_do_not_collide() {
        let cache = SolutionCache::new();
        cache.insert_or_upgrade(key_of(4), "exact", sol(Quality::Optimal), 3);
        assert!(cache.lookup(&key_of(6), AcceptPolicy::Bound).is_none());
    }
}

//! The quality-aware memoization cache: canonical instance key →
//! best-known [`Solution`].
//!
//! Keys come from [`Instance::canonical_key`], so two submissions of
//! the same instance — even under a node relabeling, when the
//! refinement individualizes — land in the same slot. Entries carry a
//! quality rank, and [`SolutionCache::insert_or_upgrade`] only ever
//! *improves* a slot: a proved [`Quality::Optimal`] (or
//! [`Quality::Infeasible`]) result is final; an
//! [`Quality::UpperBound`] is replaced by any cheaper bound, any
//! tighter lower bound at equal cost, and any proved result.
//!
//! Whether a cached entry can answer a request without re-solving is
//! the *request's* choice ([`AcceptPolicy`]): by default only proved
//! entries short-circuit, so a client asking for `exact` never gets a
//! heuristic bound just because one is cached; `accept=bound` opts in
//! to serving cached upper bounds.
//!
//! ## Crash recovery
//!
//! The cache snapshots to a versioned text format
//! ([`SolutionCache::write_snapshot`]) — a `cache v1` header, then one
//! `entry <key-hex> <canonical> <scaled-cost>` line per slot followed
//! by the entry's embedded `solution v1` document (the same framing
//! the wire protocol uses). Loading ([`SolutionCache::load_snapshot`])
//! is tolerant by design: a truncated or corrupted entry is skipped
//! and counted ([`SnapshotReport`]), never fatal, and surviving
//! entries merge through the same monotone upgrade path as live
//! inserts — so a restarted server keeps every proven `Optimal` it can
//! still read, and a stale snapshot can never downgrade fresher
//! results. Snapshot files are the server's own state (entries are
//! served back without re-validation, like live cache entries), so
//! they belong in a trusted state directory, not a network input.
//!
//! [`Instance::canonical_key`]: rbp_core::Instance::canonical_key

use rbp_core::CanonicalKey;
use rbp_solvers::{wire, Quality, Solution};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The version token [`SolutionCache::write_snapshot`] emits and
/// [`SolutionCache::load_snapshot`] accepts.
pub const CACHE_SNAPSHOT_VERSION: &str = "v1";

/// What cached quality suffices to answer a request without solving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AcceptPolicy {
    /// Only proved results ([`Quality::Optimal`] /
    /// [`Quality::Infeasible`]) short-circuit (the default).
    #[default]
    Optimal,
    /// Any cached entry short-circuits, including heuristic
    /// [`Quality::UpperBound`]s.
    Bound,
}

/// One cached result: the best solution known for an instance, the
/// registry spec that produced it, and its scaled cost (computed by the
/// inserter, which holds the instance; the cache itself never needs the
/// instance back).
#[derive(Clone, Debug)]
pub struct CachedEntry {
    /// The best-known solution.
    pub solution: Solution,
    /// The registry spec that produced it.
    pub spec: String,
    /// `solution.cost` scaled by the instance's model ε (the comparison
    /// key for upper-bound upgrades).
    pub scaled_cost: u128,
}

/// Counters describing cache behaviour since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing acceptable.
    pub misses: u64,
    /// Entries created for a previously unseen key.
    pub insertions: u64,
    /// Entries replaced by a strictly better result.
    pub upgrades: u64,
    /// Live entries.
    pub entries: u64,
    /// Snapshot entries successfully parsed back at load time.
    pub recovered: u64,
    /// Snapshot entries dropped as truncated/corrupt at load time.
    pub skipped: u64,
}

/// What one [`SolutionCache::load_snapshot`] call managed to read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Entries parsed and offered to the cache (an entry that loses to
    /// a strictly better live incumbent still counts as recovered).
    pub recovered: u64,
    /// Entries dropped: truncated, corrupted, or under an unreadable
    /// header. Never fatal.
    pub skipped: u64,
}

/// A thread-safe canonical-key → best-solution map with monotone
/// quality: entries only improve.
#[derive(Default)]
pub struct SolutionCache {
    map: Mutex<HashMap<CanonicalKey, CachedEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    upgrades: AtomicU64,
    recovered: AtomicU64,
    skipped: AtomicU64,
}

/// Locks the map, recovering from poisoning: map mutations are
/// single-statement consistent, so a panicking peer thread (a
/// supervised worker death) cannot leave the map half-updated.
fn lock_map(
    m: &Mutex<HashMap<CanonicalKey, CachedEntry>>,
) -> MutexGuard<'_, HashMap<CanonicalKey, CachedEntry>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Quality rank for upgrade decisions: higher wins at equal cost class.
fn rank(q: &Quality) -> u8 {
    match q {
        Quality::UpperBound { .. } => 0,
        Quality::Optimal | Quality::Infeasible => 1,
    }
}

/// Whether `candidate` (at `candidate_cost`) is strictly better than
/// `incumbent`: proved beats bounded; among bounds, cheaper cost beats,
/// then a tighter lower bound at equal cost.
fn improves(candidate: &Solution, candidate_cost: u128, incumbent: &CachedEntry) -> bool {
    let (new_rank, old_rank) = (rank(&candidate.quality), rank(&incumbent.solution.quality));
    if new_rank != old_rank {
        return new_rank > old_rank;
    }
    if new_rank == 1 {
        return false; // both proved: nothing left to improve
    }
    if candidate_cost != incumbent.scaled_cost {
        return candidate_cost < incumbent.scaled_cost;
    }
    match (&candidate.quality, &incumbent.solution.quality) {
        (Quality::UpperBound { lower_bound: new }, Quality::UpperBound { lower_bound: old }) => {
            new > old
        }
        _ => false,
    }
}

impl SolutionCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolutionCache::default()
    }

    /// Looks up `key`; returns a clone of the entry when its quality
    /// satisfies `accept`. Counts a hit or a miss either way.
    pub fn lookup(&self, key: &CanonicalKey, accept: AcceptPolicy) -> Option<CachedEntry> {
        let map = lock_map(&self.map);
        let found = map.get(key).filter(|e| match accept {
            AcceptPolicy::Optimal => rank(&e.solution.quality) == 1,
            AcceptPolicy::Bound => true,
        });
        match found {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a fresh result, or upgrades the incumbent when the new
    /// result is strictly better (see module docs). Returns `true` when
    /// the slot changed.
    pub fn insert_or_upgrade(
        &self,
        key: CanonicalKey,
        spec: &str,
        solution: Solution,
        scaled_cost: u128,
    ) -> bool {
        let mut map = lock_map(&self.map);
        match map.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(CachedEntry {
                    solution,
                    spec: spec.to_string(),
                    scaled_cost,
                });
                self.insertions.fetch_add(1, Ordering::Relaxed);
                true
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if improves(&solution, scaled_cost, slot.get()) {
                    slot.insert(CachedEntry {
                        solution,
                        spec: spec.to_string(),
                        scaled_cost,
                    });
                    self.upgrades.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Serializes every entry as a `cache v1` snapshot document:
    /// stable output (entries in key-hex order), each entry an `entry`
    /// line followed by its embedded `solution v1` document.
    pub fn write_snapshot(&self) -> String {
        let map = lock_map(&self.map);
        let mut entries: Vec<(&CanonicalKey, &CachedEntry)> = map.iter().collect();
        entries.sort_by_key(|(k, _)| k.to_hex());
        let mut out = String::with_capacity(32 + entries.len() * 256);
        let _ = writeln!(out, "cache {CACHE_SNAPSHOT_VERSION}");
        for (key, entry) in entries {
            let _ = writeln!(
                out,
                "entry {} {} {}",
                key.to_hex(),
                key.is_relabeling_invariant() as u8,
                entry.scaled_cost
            );
            out.push_str(&wire::write_solution(&entry.spec, &entry.solution));
        }
        out
    }

    /// Loads a snapshot produced by [`SolutionCache::write_snapshot`],
    /// merging entries through the monotone upgrade path (a loaded
    /// entry can never downgrade a better live incumbent).
    ///
    /// Tolerant by contract: a malformed `entry` line, a truncated or
    /// corrupt embedded solution document, or an unreadable header
    /// skips to the next `entry` line and counts the loss — loading
    /// never panics and never aborts, so a server restarting over a
    /// damaged snapshot recovers everything still readable.
    pub fn load_snapshot(&self, text: &str) -> SnapshotReport {
        let lines: Vec<&str> = text.lines().collect();
        let mut report = SnapshotReport::default();

        // header: first non-blank, non-comment line must be `cache v1`
        let header_ok = lines
            .iter()
            .map(|l| l.trim())
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .is_some_and(|l| {
                let mut parts = l.split_whitespace();
                parts.next() == Some("cache") && parts.next() == Some(CACHE_SNAPSHOT_VERSION)
            });

        // entry blocks: each starts at an `entry ` line and runs to the
        // next one (the embedded solution document is self-terminated,
        // so a truncated document simply fails its own parse)
        let starts: Vec<usize> = (0..lines.len())
            .filter(|&i| lines[i].trim_start().starts_with("entry "))
            .collect();
        for (si, &start) in starts.iter().enumerate() {
            let end = starts.get(si + 1).copied().unwrap_or(lines.len());
            if header_ok && self.load_entry(&lines[start..end], start + 1) {
                report.recovered += 1;
            } else {
                report.skipped += 1;
            }
        }
        self.recovered
            .fetch_add(report.recovered, Ordering::Relaxed);
        self.skipped.fetch_add(report.skipped, Ordering::Relaxed);
        report
    }

    /// Parses one entry block (`entry` line + solution document) and
    /// offers it to the cache. Any parse failure returns `false`.
    fn load_entry(&self, block: &[&str], first_line: usize) -> bool {
        let mut parts = block[0].split_whitespace();
        let (Some("entry"), Some(hex), Some(canonical), Some(cost), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return false;
        };
        let canonical = match canonical {
            "0" => false,
            "1" => true,
            _ => return false,
        };
        let Some(key) = CanonicalKey::from_hex(hex, canonical) else {
            return false;
        };
        let Ok(scaled_cost) = cost.parse::<u128>() else {
            return false;
        };
        let doc = block[1..].join("\n");
        let Ok(parsed) = wire::parse_solution_at(&doc, first_line + 1) else {
            return false;
        };
        self.insert_or_upgrade(key, &parsed.spec, parsed.solution, scaled_cost);
        true
    }

    /// Writes the snapshot to a file.
    pub fn save_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.write_snapshot())
    }

    /// Loads a snapshot file; a missing file is an empty snapshot (the
    /// first boot of a fresh server), other I/O errors propagate.
    pub fn load_from(&self, path: &std::path::Path) -> std::io::Result<SnapshotReport> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(self.load_snapshot(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SnapshotReport::default()),
            Err(e) => Err(e),
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            entries: lock_map(&self.map).len() as u64,
            recovered: self.recovered.load(Ordering::Relaxed),
            skipped: self.skipped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{CostModel, Instance};
    use rbp_graph::generate;
    use rbp_solvers::Stats;

    fn key_of(n: usize) -> CanonicalKey {
        Instance::new(generate::chain(n), 2, CostModel::base()).canonical_key()
    }

    fn sol(quality: Quality) -> Solution {
        Solution {
            trace: rbp_core::Pebbling::new(),
            cost: rbp_core::Cost::ZERO,
            quality,
            stats: Stats::new(),
        }
    }

    #[test]
    fn optimal_policy_skips_bounds_and_bound_policy_serves_them() {
        let cache = SolutionCache::new();
        let key = key_of(4);
        cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 2 }),
            10,
        );
        assert!(cache.lookup(&key, AcceptPolicy::Optimal).is_none());
        assert!(cache.lookup(&key, AcceptPolicy::Bound).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn upper_bounds_upgrade_to_optimal_but_never_back() {
        let cache = SolutionCache::new();
        let key = key_of(5);
        assert!(cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 2 }),
            10
        ));
        // cheaper bound upgrades
        assert!(cache.insert_or_upgrade(
            key,
            "beam:8",
            sol(Quality::UpperBound { lower_bound: 2 }),
            8
        ));
        // equal-cost tighter lower bound upgrades
        assert!(cache.insert_or_upgrade(
            key,
            "beam:16",
            sol(Quality::UpperBound { lower_bound: 4 }),
            8
        ));
        // worse bound does not
        assert!(!cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 1 }),
            12
        ));
        // proved result wins
        assert!(cache.insert_or_upgrade(key, "exact", sol(Quality::Optimal), 8));
        // and is final
        assert!(!cache.insert_or_upgrade(
            key,
            "greedy",
            sol(Quality::UpperBound { lower_bound: 5 }),
            6
        ));
        let entry = cache.lookup(&key, AcceptPolicy::Optimal).unwrap();
        assert_eq!(entry.spec, "exact");
        assert_eq!(cache.stats().upgrades, 3);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn distinct_instances_do_not_collide() {
        let cache = SolutionCache::new();
        cache.insert_or_upgrade(key_of(4), "exact", sol(Quality::Optimal), 3);
        assert!(cache.lookup(&key_of(6), AcceptPolicy::Bound).is_none());
    }

    #[test]
    fn model_dimension_is_part_of_the_key() {
        // two instances differing only in the multiprocessor dimension
        // (processor count, or cost weights) must never share a slot: a
        // p = 2 optimum can be strictly cheaper than the p = 1 optimum
        use rbp_core::{MppDim, Ratio};
        let base = Instance::new(generate::chain(4), 2, CostModel::base());
        let cache = SolutionCache::new();
        cache.insert_or_upgrade(base.canonical_key(), "exact", sol(Quality::Optimal), 3);
        for lifted in [
            base.with_procs(2),
            base.with_procs(4),
            base.with_mpp(MppDim {
                p: 2,
                comm: Ratio::new(3, 1),
                comp: Ratio::new(1, 1),
            }),
            base.with_mpp(MppDim {
                p: 2,
                comm: Ratio::new(1, 1),
                comp: Ratio::new(1, 2),
            }),
        ] {
            assert_ne!(base.canonical_key(), lifted.canonical_key());
            assert!(
                cache
                    .lookup(&lifted.canonical_key(), AcceptPolicy::Bound)
                    .is_none(),
                "classic entry served for a lifted instance"
            );
        }
        // the two weighted variants must also differ from each other
        assert_ne!(
            base.with_mpp(MppDim {
                p: 2,
                comm: Ratio::new(3, 1),
                comp: Ratio::new(1, 1),
            })
            .canonical_key(),
            base.with_mpp(MppDim {
                p: 2,
                comm: Ratio::new(1, 1),
                comp: Ratio::new(1, 2),
            })
            .canonical_key()
        );
    }

    /// A populated cache with a proved and a bounded entry.
    fn populated() -> SolutionCache {
        let cache = SolutionCache::new();
        cache.insert_or_upgrade(key_of(4), "exact", sol(Quality::Optimal), 3);
        cache.insert_or_upgrade(
            key_of(6),
            "greedy",
            sol(Quality::UpperBound { lower_bound: 2 }),
            9,
        );
        cache
    }

    #[test]
    fn snapshot_round_trips_every_entry() {
        let cache = populated();
        let text = cache.write_snapshot();
        let fresh = SolutionCache::new();
        let report = fresh.load_snapshot(&text);
        assert_eq!(
            report,
            SnapshotReport {
                recovered: 2,
                skipped: 0
            }
        );
        // the proved entry answers an Optimal-policy lookup again
        let entry = fresh.lookup(&key_of(4), AcceptPolicy::Optimal).unwrap();
        assert_eq!(entry.spec, "exact");
        // the bound survives with its scaled cost
        let entry = fresh.lookup(&key_of(6), AcceptPolicy::Bound).unwrap();
        assert_eq!(entry.scaled_cost, 9);
        assert_eq!(fresh.stats().recovered, 2);
        // stable output: a reloaded cache snapshots identically
        assert_eq!(fresh.write_snapshot(), text);
    }

    #[test]
    fn corrupt_entries_are_skipped_not_fatal() {
        let cache = populated();
        let text = cache.write_snapshot();
        // mangle the first entry's key hex; the second must survive
        let mangled = text.replacen("entry ", "entry zz", 1);
        let fresh = SolutionCache::new();
        let report = fresh.load_snapshot(&mangled);
        assert_eq!(
            report,
            SnapshotReport {
                recovered: 1,
                skipped: 1
            }
        );
        assert_eq!(fresh.stats().entries, 1);
        assert_eq!(fresh.stats().skipped, 1);
    }

    #[test]
    fn truncated_snapshot_keeps_complete_entries() {
        let cache = populated();
        let text = cache.write_snapshot();
        // cut the file mid-way through the last embedded document
        let cut = text.len() - 20;
        let truncated = &text[..cut];
        let fresh = SolutionCache::new();
        let report = fresh.load_snapshot(truncated);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn unreadable_header_skips_everything() {
        let cache = populated();
        let text = cache.write_snapshot();
        let bad = text.replacen("cache v1", "cache v9", 1);
        let fresh = SolutionCache::new();
        let report = fresh.load_snapshot(&bad);
        assert_eq!(
            report,
            SnapshotReport {
                recovered: 0,
                skipped: 2
            }
        );
        assert_eq!(fresh.stats().entries, 0);
        // garbage and empty input are quietly empty, never a panic
        assert_eq!(
            SolutionCache::new().load_snapshot(""),
            SnapshotReport::default()
        );
        assert_eq!(
            SolutionCache::new().load_snapshot("total garbage\n\u{0}\u{0}"),
            SnapshotReport::default()
        );
    }

    #[test]
    fn stale_snapshot_never_downgrades_a_live_entry() {
        // snapshot holds only a bound...
        let old = SolutionCache::new();
        old.insert_or_upgrade(
            key_of(5),
            "greedy",
            sol(Quality::UpperBound { lower_bound: 1 }),
            20,
        );
        let text = old.write_snapshot();
        // ...the live cache has since proved optimality
        let live = SolutionCache::new();
        live.insert_or_upgrade(key_of(5), "exact", sol(Quality::Optimal), 8);
        let report = live.load_snapshot(&text);
        assert_eq!(report.recovered, 1);
        let entry = live.lookup(&key_of(5), AcceptPolicy::Optimal).unwrap();
        assert_eq!(entry.spec, "exact");
        assert_eq!(entry.scaled_cost, 8);
    }
}

//! Parallel-vs-sequential equivalence over the full perf-snapshot
//! workload × model matrix: the hash-sharded solver must find the same
//! optimal scaled cost as the sequential solver on every recorded cell,
//! and both traces must replay through the validating engine.
//!
//! This is the integration-level counterpart to the randomized
//! equivalence proptests in `rbp-solvers`: it pins the exact instances
//! whose throughput the committed `BENCH_exact.json` tracks.

use rbp_bench::perf_snapshot;
use rbp_core::engine;
use rbp_solvers::api::{ParallelExactSolver, Solver};
use rbp_solvers::registry;

/// Debug builds run the matrix at one parallel thread count to keep the
/// suite fast; release (CI perf job, local `--release` runs) covers two.
fn thread_counts() -> &'static [usize] {
    if cfg!(debug_assertions) {
        &[4]
    } else {
        &[2, 4]
    }
}

#[test]
fn full_matrix_parallel_equals_sequential() {
    for case in perf_snapshot::cells() {
        // the matmul cells intern ~10⁶ states; with debug asserts
        // (full metadata rescan per intern) they take minutes, so they
        // are covered by the release pass only
        if cfg!(debug_assertions) && case.workload == "matmul" {
            continue;
        }
        let inst = &case.instance;
        let eps = inst.model().epsilon();
        let seq = registry::solve("exact", inst).unwrap();
        let seq_sim = engine::simulate(inst, &seq.trace).unwrap();
        assert_eq!(seq_sim.cost, seq.cost);
        assert!(seq.is_optimal(), "unbudgeted exact must prove optimality");
        for &threads in thread_counts() {
            let par = ParallelExactSolver::with_threads(threads)
                .solve_default(inst)
                .unwrap();
            assert_eq!(
                par.cost.scaled(eps),
                seq.cost.scaled(eps),
                "{}/{} diverged at {threads} threads",
                case.workload,
                case.model
            );
            let sim = engine::simulate(inst, &par.trace).unwrap();
            assert_eq!(
                sim.cost, par.cost,
                "{}/{} parallel trace must replay exactly",
                case.workload, case.model
            );
            assert!(sim.peak_red <= inst.red_limit());
        }
    }
}

#[test]
fn extra_cells_parallel_equals_sequential() {
    // the larger incumbent-tractable cells; their base-model variants
    // take seconds in debug, so this heavier pass is release-only
    if cfg!(debug_assertions) {
        return;
    }
    for case in perf_snapshot::extra_cells() {
        let inst = &case.instance;
        let eps = inst.model().epsilon();
        let seq = registry::solve("exact", inst).unwrap();
        let par = ParallelExactSolver::with_threads(4)
            .solve_default(inst)
            .unwrap();
        assert_eq!(
            par.cost.scaled(eps),
            seq.cost.scaled(eps),
            "{}/{} diverged",
            case.workload,
            case.model
        );
        let sim = engine::simulate(inst, &par.trace).unwrap();
        assert_eq!(sim.cost, par.cost);
    }
}

//! `exact@mpp:1`-vs-classic equivalence over the full perf-snapshot
//! workload × model matrix: at one processor the multiprocessor state
//! space is isomorphic to the classic one, so wherever the mpp solver
//! proves optimality its scaled cost must equal the classic `exact`
//! optimum — on every recorded cell, including the larger
//! incumbent-tractable ones.
//!
//! The mpp search is plain Dijkstra (no A* heuristic), so one dense
//! cell (matmul/oneshot) honestly exceeds the default state cap and
//! degrades to its greedy seed as an `UpperBound`; the test therefore
//! asserts equality on proved-optimal cells and pins that at least 21
//! of the 22 cells do prove out, so a pruning regression that silently
//! degrades more of the matrix still fails here.
//!
//! Release-only: without `--release` the per-intern debug rescans put
//! the dense cells at minutes each (same policy as the matmul cells of
//! `parallel_equivalence.rs`).

#![cfg(not(debug_assertions))]

use rbp_bench::perf_snapshot;
use rbp_core::engine;
use rbp_solvers::registry;

#[test]
fn full_matrix_mpp_one_proc_equals_classic_exact() {
    let cells = perf_snapshot::all_cells();
    let mut proved = 0usize;
    for case in &cells {
        let inst = &case.instance;
        let mpp = registry::solve("exact@mpp:1", inst).unwrap();
        let sim = engine::simulate(inst, &mpp.trace).unwrap();
        assert_eq!(sim.cost, mpp.cost, "{}/{}", case.workload, case.model);
        if !mpp.is_optimal() {
            continue; // degraded on a state cap — counted below
        }
        proved += 1;
        let classic = registry::solve("exact", inst).unwrap();
        assert!(classic.is_optimal());
        assert_eq!(
            mpp.scaled_cost(inst),
            classic.scaled_cost(inst),
            "{}/{}: exact@mpp:1 optimum drifted from the classic game",
            case.workload,
            case.model
        );
    }
    assert!(
        proved >= cells.len() - 1,
        "exact@mpp:1 proved only {proved}/{} cells optimal — the search degraded",
        cells.len()
    );
}

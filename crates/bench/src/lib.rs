//! # rbp-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper, plus Criterion benchmarks. Each `exp_*` module prints one
//! artifact's rows and writes the same data as CSV under `results/`.
//!
//! Run everything with:
//! ```text
//! cargo run --release -p rbp-bench --bin experiments -- all
//! ```
//! or a single experiment by id (`table1`, `table2`, `fig1`, `fig2`,
//! `fig4`, `fig5`, `fig67`, `fig8`, `workloads`, `ablation`).
//!
//! The extra `perf-snapshot` id (not part of `all`) records exact-solver
//! hot-path baselines — sequential-with-incumbent and hash-sharded
//! parallel — to `BENCH_exact.json` at the workspace root, and
//! `perf-check` diffs a fresh measurement against that committed
//! baseline — see [`perf_snapshot`]. Likewise `gap-atlas` records the
//! worst observed heuristic/optimal ratios per (model, spec) to
//! `GAP_ATLAS.json`, diffed by `gap-check` — see [`gap_atlas`].

pub mod exp_ablation;
pub mod exp_fig1;
pub mod exp_fig2;
pub mod exp_fig4;
pub mod exp_fig5;
pub mod exp_fig67;
pub mod exp_fig8;
pub mod exp_table1;
pub mod exp_table2;
pub mod exp_workloads;
pub mod gap_atlas;
pub mod perf_snapshot;
pub mod report;

use std::path::Path;

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 10] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig67",
    "fig8",
    "workloads",
    "ablation",
];

/// Dispatches one experiment by id. Panics on unknown ids.
pub fn run_experiment(id: &str, out: &Path) {
    match id {
        "table1" => exp_table1::run(out),
        "table2" => exp_table2::run(out),
        "fig1" => exp_fig1::run(out),
        "fig2" => exp_fig2::run(out),
        "fig4" => exp_fig4::run(out),
        "fig5" => exp_fig5::run(out),
        "fig67" => exp_fig67::run(out),
        "fig8" => exp_fig8::run(out),
        "workloads" => exp_workloads::run(out),
        "ablation" => exp_ablation::run(out),
        // informational perf baseline: always lands at the workspace
        // root (next to Cargo.lock) so the trajectory is tracked in git
        "perf-snapshot" => perf_snapshot::run(&report::workspace_root()),
        // non-gating diff of a fresh measurement against the committed
        // baseline (GitHub annotations for >25% states/sec regressions)
        "perf-check" => {
            perf_snapshot::check(&report::workspace_root());
        }
        // worst heuristic/optimal ratios, committed like BENCH_exact.json
        "gap-atlas" => gap_atlas::run(&report::workspace_root()),
        // non-gating diff of the atlas against the committed baseline
        "gap-check" => {
            gap_atlas::check(&report::workspace_root());
        }
        other => panic!(
            "unknown experiment id '{other}'; known: {ALL_EXPERIMENTS:?} plus 'perf-snapshot', \
             'perf-check', 'gap-atlas', and 'gap-check'"
        ),
    }
}

//! Figure 5 / Theorem 2: the Hamiltonian Path reduction, executed. For a
//! battery of graphs we compare the pebbling-derived decision (optimal
//! cost reaches the threshold) with the classical Held–Karp ground truth
//! — in all four models — and decode the certificate path.

use crate::report::Table;
use rbp_core::{CostModel, ModelKind};
use rbp_graph::Graph;
use rbp_reductions::{hampath, reduction_hampath};
use std::path::Path;

fn battery() -> Vec<(String, Graph)> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut v: Vec<(String, Graph)> = vec![
        ("path5".into(), Graph::path(5)),
        ("cycle5".into(), Graph::cycle(5)),
        ("star5".into(), Graph::star(5)),
        ("K5".into(), Graph::complete(5)),
        ("K_{2,3}".into(), Graph::complete_bipartite(2, 3)),
        ("K_{1,4}".into(), Graph::complete_bipartite(1, 4)),
        (
            "2 components".into(),
            Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]),
        ),
    ];
    for (i, p) in [0.3f64, 0.5, 0.7].iter().enumerate() {
        v.push((format!("G(5,{p})#{i}"), Graph::gnp(5, *p, &mut rng)));
    }
    v
}

/// Regenerates the Figure-5 / Theorem-2 experiment.
pub fn run(out: &Path) {
    let mut t = Table::new(
        "Fig. 5 / Thm 2 — pebbling decides Hamiltonian Path (all models)",
        &[
            "graph", "M", "truth", "oneshot", "nodel", "base", "compcost", "agree",
        ],
    );
    let mut agreements = 0usize;
    let mut total = 0usize;
    for (name, g) in battery() {
        let truth = hampath::has_hamiltonian_path(&g);
        let red = reduction_hampath::encode(g);
        let mut cells = vec![name, red.graph.m().to_string(), truth.to_string()];
        let mut all_agree = true;
        for kind in [
            ModelKind::Oneshot,
            ModelKind::NoDel,
            ModelKind::Base,
            ModelKind::CompCost,
        ] {
            let model = CostModel::of_kind(kind);
            let decided = red.decides_hamiltonian(model).expect("solvable");
            all_agree &= decided == truth;
            cells.push(decided.to_string());
        }
        cells.push(all_agree.to_string());
        agreements += all_agree as usize;
        total += 1;
        t.row_strings(cells);
    }
    t.print();
    t.write_csv(out, "fig5").expect("write csv");
    assert_eq!(agreements, total, "reduction disagreed with ground truth");

    // certificate decoding on a larger structured instance via the DP
    let red = reduction_hampath::encode(Graph::petersen());
    let model = CostModel::oneshot();
    let (cost, order) = red.solve_dp(model);
    let threshold = red.scaled_schedule_threshold(model);
    println!(
        "  certificate demo: Petersen — pebbling cost {cost}, threshold {threshold}, \
         decoded path: {:?}",
        red.decode(&order).expect("Petersen is traceable")
    );
    println!("  agreement: {agreements}/{total} graphs across 4 models");
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_runs() {
        let dir = std::env::temp_dir().join("rbp_fig5_test");
        super::run(&dir);
        assert!(dir.join("fig5.csv").exists());
    }
}

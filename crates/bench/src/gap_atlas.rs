//! `gap-atlas`: worst-observed heuristic/optimal ratios per (model, spec).
//!
//! Demaine–Liu and Chan et al. (PAPERS.md) predict large approximation
//! gaps between pebbling heuristics and optima. This module measures
//! them empirically: every heuristic registry spec in [`HEUR_SPECS`] is
//! swept against the exact optimum over a fixed instance pool — the
//! perf-snapshot workload matrix plus a seeded slice of the random
//! ensembles ([`rbp_workloads::ensemble`]) — and the worst observed
//! ratio per (model, spec) is committed to `GAP_ATLAS.json` at the
//! workspace root, diffed in CI by `gap-check` exactly like
//! `BENCH_exact.json` is by `perf-check`.
//!
//! Ratios are recorded as integer **milli-ratios** (`heur·1000 / opt`,
//! floor division over ε-scaled costs) so the file stays byte-stable:
//! every input is deterministic (seeded ensembles, deterministic
//! solvers), so any diff in a committed atlas row is a real behavior
//! change in a solver, not noise. Cells whose optimum is zero cannot
//! form a ratio; they are counted per row (`zero_opt_cells`) but only a
//! heuristic that pays a positive cost where the optimum is free is
//! reported, via the `worst_zero_opt_cost` column.

use crate::perf_snapshot;
use crate::report::Table;
use rbp_core::{bounds, Instance, ModelKind};
use rbp_solvers::registry;
use rbp_workloads::ensemble::{self, EnsembleConfig, LargeConfig};
use std::io::Write as _;
use std::path::Path;

/// The atlas JSON schema id.
pub const SCHEMA: &str = "rbp-gap-atlas/v1";

/// The heuristic specs the atlas tracks against `exact`. The random
/// evictor is deliberately absent: the atlas must be deterministic to
/// be diffable.
pub const HEUR_SPECS: [&str; 6] = [
    "greedy",
    "greedy:fewest-blue-inputs/lru",
    "greedy:highest-red-ratio/fifo",
    "beam:1",
    "beam:8",
    "portfolio",
];

/// Seed for the random half of the instance pool (distinct from the
/// fuzz-soak seed: the atlas wants a stable *measurement* set, the soak
/// wants churn).
pub const ATLAS_SEED: u64 = 0xA71A5;

/// Number of seeded ensemble instances in the pool.
pub const ENSEMBLE_COUNT: usize = 200;

/// The hierarchical coarsening specs measured on the large ensemble.
/// These rows are anchored on [`bounds::best_lower_bound`] instead of
/// `exact`: the large instances (hundreds of nodes) sit far beyond the
/// exact frontier, so the atlas records coarse-UB / fractional-LB
/// milli-ratios — an *upper bound* on the true approximation gap. The
/// `optimal_cost` column of these rows therefore holds the ε-scaled
/// lower bound, not a certified optimum.
pub const COARSE_SPECS: [&str; 2] = ["coarse", "coarse:auto/greedy"];

/// Number of seeded large-ensemble instances behind the coarse rows.
pub const LARGE_ENSEMBLE_COUNT: usize = 12;

/// One worst-case row of the atlas: the largest observed
/// heuristic/optimal ratio for a (model, spec) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GapRow {
    /// Cost-model name (`base`, `oneshot`, `nodel`, `compcost`).
    pub model: String,
    /// The heuristic registry spec.
    pub spec: String,
    /// Worst `heur·1000 / opt` over cells with a positive optimum.
    pub worst_milli: u128,
    /// The instance realizing `worst_milli`.
    pub instance: String,
    /// The heuristic's ε-scaled cost on that instance.
    pub heuristic_cost: u128,
    /// The exact optimum (ε-scaled) on that instance.
    pub optimal_cost: u128,
    /// Cells measured for this row (positive-optimum cells only).
    pub cells: usize,
    /// Cells skipped because the optimum was zero.
    pub zero_opt_cells: usize,
    /// Worst heuristic cost observed on a zero-optimum cell (0 when the
    /// heuristic also always solved those for free).
    pub worst_zero_opt_cost: u128,
}

fn kind_name(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::Base => "base",
        ModelKind::Oneshot => "oneshot",
        ModelKind::NoDel => "nodel",
        ModelKind::CompCost => "compcost",
    }
}

/// The instance pool: the perf-snapshot workload matrix (named,
/// exact-tractable by construction) plus [`ENSEMBLE_COUNT`] seeded
/// random ensemble instances covering all four models and both
/// source/sink conventions.
pub fn pool() -> Vec<(String, Instance)> {
    let mut out: Vec<(String, Instance)> = perf_snapshot::cells()
        .into_iter()
        .map(|c| (format!("{}-{}", c.workload, c.model), c.instance))
        .collect();
    let cfg = EnsembleConfig {
        max_nodes: 9,
        ..EnsembleConfig::default()
    };
    for i in 0..ENSEMBLE_COUNT {
        let g = ensemble::instance_at(ATLAS_SEED, i as u64, &cfg);
        if g.instance.is_feasible() {
            out.push((g.name, g.instance));
        }
    }
    out
}

/// The large instance pool behind the coarse rows: [`LARGE_ENSEMBLE_COUNT`]
/// seeded layered DAGs of 150–600 nodes ([`ensemble::large_layered_at`]),
/// rotating all four cost models under the Hong–Kung conventions.
pub fn large_pool() -> Vec<(String, Instance)> {
    let cfg = LargeConfig::default();
    (0..LARGE_ENSEMBLE_COUNT as u64)
        .map(|i| {
            let g = ensemble::large_layered_at(ATLAS_SEED, i, &cfg);
            (g.name, g.instance)
        })
        .collect()
}

/// Sweeps [`COARSE_SPECS`] over [`large_pool`], anchoring each ratio on
/// the fractional lower bound rather than an exact optimum (see
/// [`COARSE_SPECS`]). Folds into one [`GapRow`] per (model, spec), same
/// shape and sort order as [`measure`] so the rows merge into the same
/// atlas file.
pub fn measure_coarse() -> Vec<GapRow> {
    let pool = large_pool();
    let mut rows: Vec<GapRow> = Vec::new();
    for kind in ModelKind::ALL {
        for spec in COARSE_SPECS {
            rows.push(GapRow {
                model: kind_name(kind).to_string(),
                spec: spec.to_string(),
                worst_milli: 0,
                instance: String::new(),
                heuristic_cost: 0,
                optimal_cost: 0,
                cells: 0,
                zero_opt_cells: 0,
                worst_zero_opt_cost: 0,
            });
        }
    }
    for (name, inst) in &pool {
        let lb = inst.scaled_cost(&bounds::best_lower_bound(inst));
        let model = kind_name(inst.model().kind());
        for spec in COARSE_SPECS {
            let coarse = registry::solve(spec, inst)
                .expect("coarse cannot exhaust resources on the large pool");
            let cost = coarse.scaled_cost(inst);
            let row = rows
                .iter_mut()
                .find(|r| r.model == model && r.spec == spec)
                .expect("row pre-seeded");
            if lb == 0 {
                row.zero_opt_cells += 1;
                row.worst_zero_opt_cost = row.worst_zero_opt_cost.max(cost);
                continue;
            }
            row.cells += 1;
            let milli = cost * 1000 / lb;
            if milli > row.worst_milli {
                row.worst_milli = milli;
                row.instance = name.clone();
                row.heuristic_cost = cost;
                row.optimal_cost = lb;
            }
        }
    }
    rows.retain(|r| r.cells > 0 || r.zero_opt_cells > 0);
    rows
}

/// Sweeps the pool and folds it into one [`GapRow`] per (model, spec).
/// Rows come out sorted by (model, spec) so the JSON is byte-stable.
pub fn measure() -> Vec<GapRow> {
    let pool = pool();
    let mut rows: Vec<GapRow> = Vec::new();
    for kind in ModelKind::ALL {
        for spec in HEUR_SPECS {
            rows.push(GapRow {
                model: kind_name(kind).to_string(),
                spec: spec.to_string(),
                worst_milli: 0,
                instance: String::new(),
                heuristic_cost: 0,
                optimal_cost: 0,
                cells: 0,
                zero_opt_cells: 0,
                worst_zero_opt_cost: 0,
            });
        }
    }
    for (name, inst) in &pool {
        let anchor = registry::solve("exact", inst).expect("pool instances are feasible");
        if !anchor.is_optimal() {
            // a budget-degraded anchor would poison every ratio
            continue;
        }
        let opt = anchor.scaled_cost(inst);
        let model = kind_name(inst.model().kind());
        for spec in HEUR_SPECS {
            let heur = registry::solve(spec, inst)
                .expect("heuristics cannot exhaust resources on the pool");
            let cost = heur.scaled_cost(inst);
            let row = rows
                .iter_mut()
                .find(|r| r.model == model && r.spec == spec)
                .expect("row pre-seeded");
            if opt == 0 {
                row.zero_opt_cells += 1;
                row.worst_zero_opt_cost = row.worst_zero_opt_cost.max(cost);
                continue;
            }
            row.cells += 1;
            let milli = cost * 1000 / opt;
            if milli > row.worst_milli {
                row.worst_milli = milli;
                row.instance = name.clone();
                row.heuristic_cost = cost;
                row.optimal_cost = opt;
            }
        }
    }
    rows.retain(|r| r.cells > 0 || r.zero_opt_cells > 0);
    rows.extend(measure_coarse());
    rows.sort_by(|a, b| (&a.model, &a.spec).cmp(&(&b.model, &b.spec)));
    rows
}

/// Writes the atlas as `<dir>/GAP_ATLAS.json` and returns the path.
pub fn write_json(rows: &[GapRow], dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("GAP_ATLAS.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"schema\": \"{SCHEMA}\",")?;
    writeln!(
        f,
        "  \"description\": \"worst observed heuristic/optimal milli-ratios per (model, spec); \
         deterministic — regenerate with `cargo run --release -p rbp-bench --bin experiments -- \
         gap-atlas`, diff with `... -- gap-check`\","
    )?;
    writeln!(f, "  \"seed\": {ATLAS_SEED},")?;
    writeln!(f, "  \"ensemble_count\": {ENSEMBLE_COUNT},")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"model\": \"{}\", \"spec\": \"{}\", \"worst_milli\": {}, \
             \"instance\": \"{}\", \"heuristic_cost\": {}, \"optimal_cost\": {}, \
             \"cells\": {}, \"zero_opt_cells\": {}, \"worst_zero_opt_cost\": {}}}{}",
            r.model,
            r.spec,
            r.worst_milli,
            r.instance,
            r.heuristic_cost,
            r.optimal_cost,
            r.cells,
            r.zero_opt_cells,
            r.worst_zero_opt_cost,
            comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(path)
}

fn print_table(rows: &[GapRow]) {
    let mut table = Table::new(
        "gap-atlas — worst heuristic/optimal ratios (milli, over positive-optimum cells)",
        &[
            "model",
            "spec",
            "worst",
            "instance",
            "heur",
            "opt",
            "cells",
            "opt=0",
            "worst@opt=0",
        ],
    );
    for r in rows {
        table.row_strings(vec![
            r.model.clone(),
            r.spec.clone(),
            format!("{}.{:03}", r.worst_milli / 1000, r.worst_milli % 1000),
            r.instance.clone(),
            r.heuristic_cost.to_string(),
            r.optimal_cost.to_string(),
            r.cells.to_string(),
            r.zero_opt_cells.to_string(),
            r.worst_zero_opt_cost.to_string(),
        ]);
    }
    table.print();
}

/// Runs the sweep and writes `<dir>/GAP_ATLAS.json`.
pub fn run(dir: &Path) {
    let rows = measure();
    print_table(&rows);
    let path = write_json(&rows, dir).expect("write GAP_ATLAS.json");
    println!("  wrote {}", path.display());
}

// ---------------------------------------------------------------------
// gap-check: diff a fresh atlas against the committed baseline
// ---------------------------------------------------------------------

/// Parses a committed `GAP_ATLAS.json` (own fixed format, no JSON
/// dependency). `None` when the schema line is missing or wrong.
pub fn parse_atlas(json: &str) -> Option<Vec<GapRow>> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return None;
    }
    let mut rows = Vec::new();
    for line in json.lines() {
        if !line.trim_start().starts_with("{\"model\"") {
            continue;
        }
        rows.push(GapRow {
            model: perf_snapshot::str_field(line, "model")?,
            spec: perf_snapshot::str_field(line, "spec")?,
            worst_milli: perf_snapshot::num_field(line, "worst_milli")?,
            instance: perf_snapshot::str_field(line, "instance")?,
            heuristic_cost: perf_snapshot::num_field(line, "heuristic_cost")?,
            optimal_cost: perf_snapshot::num_field(line, "optimal_cost")?,
            cells: perf_snapshot::num_field(line, "cells")? as usize,
            zero_opt_cells: perf_snapshot::num_field(line, "zero_opt_cells")? as usize,
            worst_zero_opt_cost: perf_snapshot::num_field(line, "worst_zero_opt_cost")?,
        });
    }
    Some(rows)
}

/// The `HEAD`-committed atlas, when `dir` is inside a git checkout.
fn git_show_baseline(dir: &Path) -> Option<String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["show", "HEAD:GAP_ATLAS.json"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()
}

/// `gap-check`: diffs a fresh atlas against the committed
/// `GAP_ATLAS.json`, emitting one `::warning::` annotation per row
/// whose worst ratio **grew** (a heuristic regression) and an
/// informational line per row that improved. Rows present on only one
/// side are warn-and-skip — never counted — so adding a spec or a
/// model extends the atlas without breaking CI. Non-gating: always
/// exits 0; returns the number of regressed rows.
///
/// With `GAP_CHECK_REUSE_ATLAS=1` (set by the CI job right after its
/// `gap-atlas` step) the on-disk file is reused as the fresh side
/// instead of re-running the sweep.
pub fn check(dir: &Path) -> usize {
    let path = dir.join("GAP_ATLAS.json");
    let disk = std::fs::read_to_string(&path).ok();
    let Some(committed) = git_show_baseline(dir).or_else(|| disk.clone()) else {
        println!(
            "gap-check: no committed {} — nothing to diff",
            path.display()
        );
        return 0;
    };
    let Some(baseline) = parse_atlas(&committed) else {
        println!(
            "gap-check: {} is not schema {SCHEMA}; regenerate with `experiments gap-atlas`",
            path.display()
        );
        return 0;
    };
    let reuse = std::env::var("GAP_CHECK_REUSE_ATLAS").is_ok_and(|v| v == "1");
    let fresh = match disk.as_deref().filter(|d| reuse && *d != committed) {
        Some(regenerated) => match parse_atlas(regenerated) {
            Some(rows) => {
                println!("gap-check: reusing the regenerated on-disk atlas as the fresh side");
                rows
            }
            None => measure(),
        },
        None => measure(),
    };
    let mut regressed = 0;
    for new in &fresh {
        let Some(old) = baseline
            .iter()
            .find(|r| r.model == new.model && r.spec == new.spec)
        else {
            println!(
                "gap-check: new row {}/{} (no baseline; skipped)",
                new.model, new.spec
            );
            continue;
        };
        if new.worst_milli > old.worst_milli {
            regressed += 1;
            println!(
                "::warning title=approximation gap grew::{}/{}: worst ratio {} milli vs \
                 committed {} (on {})",
                new.model, new.spec, new.worst_milli, old.worst_milli, new.instance
            );
        } else if new.worst_milli < old.worst_milli {
            println!(
                "gap-check: {}/{} improved: {} milli vs committed {}",
                new.model, new.spec, new.worst_milli, old.worst_milli
            );
        } else {
            println!(
                "gap-check: {}/{} unchanged ({} milli)",
                new.model, new.spec, new.worst_milli
            );
        }
    }
    for old in &baseline {
        if !fresh
            .iter()
            .any(|r| r.model == old.model && r.spec == old.spec)
        {
            println!(
                "gap-check: baseline row {}/{} no longer measured (skipped)",
                old.model, old.spec
            );
        }
    }
    println!(
        "gap-check: {regressed} regressed row(s) out of {} measured",
        fresh.len()
    );
    regressed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atlas_roundtrips_through_the_parser() {
        let rows = vec![
            GapRow {
                model: "base".into(),
                spec: "greedy".into(),
                worst_milli: 2500,
                instance: "matmul-base".into(),
                heuristic_cost: 25,
                optimal_cost: 10,
                cells: 12,
                zero_opt_cells: 3,
                worst_zero_opt_cost: 4,
            },
            GapRow {
                model: "oneshot".into(),
                spec: "beam:8".into(),
                worst_milli: 1000,
                instance: "chain-oneshot".into(),
                heuristic_cost: 7,
                optimal_cost: 7,
                cells: 9,
                zero_opt_cells: 0,
                worst_zero_opt_cost: 0,
            },
        ];
        let dir = std::env::temp_dir().join(format!("rbp_gap_atlas_test_{}", std::process::id()));
        let path = write_json(&rows, &dir).unwrap();
        let json = std::fs::read_to_string(path).unwrap();
        assert!(json.contains("\"schema\": \"rbp-gap-atlas/v1\""));
        let parsed = parse_atlas(&json).expect("own output must parse");
        assert_eq!(parsed, rows);
        assert!(parse_atlas("{\"schema\": \"rbp-gap-atlas/v0\"}").is_none());
    }

    #[test]
    fn pool_covers_all_models_and_is_deterministic() {
        let a = pool();
        let b = pool();
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|((n1, i1), (n2, i2))| { n1 == n2 && i1.canonical_key() == i2.canonical_key() }));
        for kind in ModelKind::ALL {
            assert!(
                a.iter().any(|(_, i)| i.model().kind() == kind),
                "pool misses model {kind:?}"
            );
        }
        assert!(a.len() > 100, "pool too small to be an atlas");
    }

    #[test]
    fn coarse_rows_anchor_on_a_positive_bound() {
        // the large pool runs under InitiallyBlue + RequireBlue, so the
        // fractional bound forces transfers — every coarse ratio is a
        // real UB/LB bracket, never a division guard
        let mut pool = large_pool();
        assert_eq!(pool.len(), LARGE_ENSEMBLE_COUNT);
        let (name, inst) = pool.swap_remove(0);
        let lb = inst.scaled_cost(&bounds::best_lower_bound(&inst));
        assert!(lb > 0, "{name}: conventions must force transfers");
        for spec in COARSE_SPECS {
            let cost = registry::solve(spec, &inst).unwrap().scaled_cost(&inst);
            assert!(cost >= lb, "{spec} beat the lower bound on {name}");
        }
    }

    #[test]
    fn measure_on_a_tiny_pool_reports_sane_ratios() {
        // a heuristic can never beat the optimum, so every ratio is
        // >= 1000 milli; exercised through the public sweep on two
        // cheap named cells by shrinking the pool via direct calls
        let inst = Instance::new(
            rbp_graph::generate::chain(8),
            2,
            rbp_core::CostModel::oneshot(),
        );
        let opt = registry::solve("exact", &inst).unwrap();
        assert!(opt.is_optimal());
        let opt_cost = opt.scaled_cost(&inst);
        for spec in HEUR_SPECS {
            let heur = registry::solve(spec, &inst).unwrap().scaled_cost(&inst);
            assert!(
                heur >= opt_cost,
                "{spec} beat the optimum: {heur} < {opt_cost}"
            );
        }
    }
}

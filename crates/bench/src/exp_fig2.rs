//! Figure 2: the hard-to-compute (H2C) gadget — computing a protected
//! source costs exactly 4 transfers, and the save/reload/recompute
//! margins (2 < 3 < 4+) that let the gadget disable recomputation.

use crate::report::Table;
use rbp_core::{CostModel, Instance, ModelKind};
use rbp_gadgets::h2c::{self, H2cConfig};
use rbp_graph::DagBuilder;
use rbp_solvers::registry;
use std::path::Path;

/// Regenerates the Figure-2 gadget measurements.
pub fn run(out: &Path) {
    let mut t = Table::new(
        "Fig. 2 — H2C gadget: inherent cost of a protected source",
        &["model", "R", "exact cost to pebble v", "paper"],
    );
    for kind in [ModelKind::Oneshot, ModelKind::Base, ModelKind::CompCost] {
        for r in [4usize, 5] {
            let dag = DagBuilder::new(1).build().unwrap();
            let h = h2c::attach(&dag, H2cConfig::standard(r));
            let model = CostModel::of_kind(kind);
            let inst = Instance::new(h.dag.clone(), r, model);
            let opt = registry::solve("exact", &inst).expect("feasible");
            t.row_strings(vec![
                kind.to_string(),
                r.to_string(),
                opt.cost.transfers.to_string(),
                "4".to_string(),
            ]);
        }
    }
    t.print();
    t.write_csv(out, "fig2").expect("write csv");

    // the margins table: once v is computed, what does each way of
    // getting it back cost?
    let mut m = Table::new(
        "Fig. 2 — value-recovery margins after computing v (base model)",
        &["strategy", "marginal transfers", "paper"],
    );
    m.row_strings(vec!["save v + reload v".into(), "2".into(), "2".into()]);
    m.row_strings(vec![
        "reload 3 starters + recompute v".into(),
        "6".into(),
        ">= 3".into(),
    ]);
    m.row_strings(vec![
        "recompute starters from scratch".into(),
        ">= 8".into(),
        ">= 4".into(),
    ]);
    m.print();
    m.write_csv(out, "fig2_margins").expect("write csv");
    println!("  (margins measured by the explicit-trace tests in rbp-gadgets::h2c;");
    println!("   conclusion: reasonable pebblings save v, never recompute it — Section 3)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig2_runs() {
        let dir = std::env::temp_dir().join("rbp_fig2_test");
        super::run(&dir);
        assert!(dir.join("fig2_margins.csv").exists());
    }
}

//! Figures 6–7 / Theorem 3: the Vertex Cover reduction, executed. The
//! optimal pebbling cost tracks 2k′·|VC₀|; decoding the optimal visit
//! order recovers a *minimum* vertex cover; and approximate pebblings
//! (greedy) decode to valid-but-larger covers — the mechanism behind the
//! δ < 2 inapproximability.

use crate::report::Table;
use rbp_core::CostModel;
use rbp_graph::{Graph, NodeId};
use rbp_reductions::{reduction_vc, vertex_cover};
use rbp_solvers::{best_order, registry};
use std::path::Path;

fn battery() -> Vec<(String, Graph)> {
    vec![
        ("path3".into(), Graph::path(3)),
        ("path4".into(), Graph::path(4)),
        ("star4".into(), Graph::star(4)),
        ("cycle4".into(), Graph::cycle(4)),
        ("K3".into(), Graph::complete(3)),
        ("K4".into(), Graph::complete(4)),
        ("matching".into(), Graph::from_edges(4, &[(0, 1), (2, 3)])),
    ]
}

/// Regenerates the Figures-6/7 / Theorem-3 experiment (oneshot model).
pub fn run(out: &Path) {
    let mut t = Table::new(
        "Figs. 6–7 / Thm 3 — pebbling cost measures minimum vertex cover (oneshot)",
        &[
            "graph",
            "|VC0|",
            "2k'|VC0|",
            "opt pebbling cost",
            "decoded |VC|",
            "decoded valid",
            "greedy-pebbling |VC|",
            "2-approx |VC|",
        ],
    );
    for (name, g) in battery() {
        let n = g.n();
        let truth = vertex_cover::min_vertex_cover(&g);
        let red = reduction_vc::encode(g, n * n + n);
        let inst = red.instance(CostModel::oneshot());
        let best = best_order(&red.grouped, &inst).expect("solvable");
        let decoded = red.decode(&best.order);
        let valid = red.graph.is_vertex_cover(&decoded);

        // an approximate pebbling decodes to a larger cover
        let greedy = registry::solve("greedy", &inst).expect("feasible");
        let visits = visits_of(&red, &greedy.computation_order());
        let greedy_cover = red.decode(&visits);
        let approx = vertex_cover::two_approx_cover(&red.graph);

        t.row_strings(vec![
            name,
            truth.len().to_string(),
            red.commons_toll(truth.len()).to_string(),
            best.cost.transfers.to_string(),
            decoded.len().to_string(),
            valid.to_string(),
            greedy_cover.len().to_string(),
            approx.len().to_string(),
        ]);
        assert!(valid, "decoded set must cover");
        assert_eq!(
            decoded.len(),
            truth.len(),
            "optimal pebbling must decode minimum cover"
        );
    }
    t.print();
    t.write_csv(out, "fig67").expect("write csv");
    println!("  (paper: optimal cost = 2k'·|VC0| + O(N²); a δ-approximate pebbling yields a");
    println!("   δ-approximate cover, so δ < 2 would contradict the unique games conjecture)");
}

fn visits_of(red: &reduction_vc::VcReduction, comp_order: &[NodeId]) -> Vec<usize> {
    let mut owner = std::collections::HashMap::new();
    for (gi, g) in red.grouped.groups().iter().enumerate() {
        for &t in &g.targets {
            owner.insert(t, gi);
        }
    }
    let mut seen = vec![false; red.grouped.len()];
    let mut visits = Vec::new();
    for v in comp_order {
        if let Some(&g) = owner.get(v) {
            if !seen[g] {
                seen[g] = true;
                visits.push(g);
            }
        }
    }
    visits
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig67_runs() {
        let dir = std::env::temp_dir().join("rbp_fig67_test");
        super::run(&dir);
        assert!(dir.join("fig67.csv").exists());
    }
}

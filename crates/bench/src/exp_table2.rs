//! Table 2: per-model summary — measured optimum brackets on random
//! DAGs, optimal-pebbling lengths against the Lemma-1 O(Δ·n) bound,
//! complexity status (this repo's executable evidence vs. citations),
//! and the greedy/optimum ratio realized on the Theorem-4 grid.

use crate::report::Table;
use rbp_core::{bounds, CostModel, Instance, ModelKind};
use rbp_gadgets::grid::{self, GridConfig};
use rbp_graph::generate;
use rbp_solvers::{best_order, registry};
use std::path::Path;

/// Regenerates Table 2.
pub fn run(out: &Path) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(12345); // deterministic
                                                            // random instance family for the cost bracket / length columns
    let dags: Vec<rbp_graph::Dag> = (0..6)
        .map(|_| generate::layered(3, 3, 2, &mut rng))
        .collect();

    let mut t = Table::new(
        "Table 2 — model properties (measured)",
        &[
            "model",
            "opt bracket (lb..ub)",
            "measured opt range",
            "len / (2Δ+3)n bound",
            "complexity (evidence)",
            "greedy/opt on grid",
        ],
    );

    for kind in ModelKind::ALL {
        let model = CostModel::of_kind(kind);
        let mut min_scaled = u128::MAX;
        let mut max_scaled = 0u128;
        let mut worst_len_ratio = 0.0f64;
        let mut bracket = String::new();
        for dag in &dags {
            let r = dag.max_indegree() + 1;
            let inst = Instance::new(dag.clone(), r, model);
            let (lo, hi) = bounds::optimum_bracket(&inst);
            bracket = format!("{lo}..{hi}");
            let opt = registry::solve("exact", &inst).expect("feasible");
            let scaled = opt.cost.scaled(model.epsilon());
            min_scaled = min_scaled.min(scaled);
            max_scaled = max_scaled.max(scaled);
            if let Some(bound) = bounds::lemma1_length_bound(&inst) {
                worst_len_ratio = worst_len_ratio.max(opt.trace.len() as f64 / bound as f64);
            } else {
                // base: report against the same formula for scale only
                let delta = dag.max_indegree() as u64;
                let b = (2 * delta + 3) * dag.n() as u64;
                worst_len_ratio = worst_len_ratio.max(opt.trace.len() as f64 / b as f64);
            }
        }

        // greedy/opt ratio on the Theorem-4 grid (model-specific recipe);
        // in base the plain grid is free either way (recomputation), so
        // the H2C-augmented fig8 run is the meaningful measurement there
        let ratio = if kind == ModelKind::Base {
            "- (see fig8)".to_string()
        } else {
            let cfg = match kind {
                ModelKind::Oneshot => GridConfig::oneshot_style(3, 12),
                _ => GridConfig::constant_k(3),
            };
            let g = grid::build(cfg);
            let inst = g.instance(model);
            let greedy = registry::solve("greedy", &inst).expect("feasible");
            let best = best_order(&g.grouped, &inst).expect("feasible");
            format!(
                "{:.2}",
                greedy.cost.scaled(model.epsilon()) as f64
                    / best.cost.scaled(model.epsilon()).max(1) as f64
            )
        };

        let complexity = match kind {
            ModelKind::Base => "PSPACE-complete [6] (cited)",
            ModelKind::Oneshot => "NP-c (Thm 2 verified here)",
            ModelKind::NoDel => "NP-c [6] + Thm 2 verified",
            ModelKind::CompCost => "NP-c (Thm 2 verified here)",
        };

        t.row_strings(vec![
            kind.to_string(),
            bracket,
            format!("{min_scaled}..{max_scaled} (scaled)"),
            format!("{worst_len_ratio:.3}"),
            complexity.to_string(),
            ratio,
        ]);
    }
    t.print();
    t.write_csv(out, "table2").expect("write csv");
    println!("  (paper: cost ∈ [0,(2Δ+1)n] for base/oneshot, [n,·] nodel, [εn,·] compcost;");
    println!(
        "   optimal length O(Δn) except base; greedy ratio Ω̃(√n) oneshot, Θ(1) nodel/compcost)"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_runs() {
        let dir = std::env::temp_dir().join("rbp_table2_test");
        super::run(&dir);
        assert!(dir.join("table2.csv").exists());
    }
}

//! Figure 8 / Theorem 4: the grid that fools greedy. Measures the
//! greedy/optimum ratio growth in the oneshot model (scaling with k′ and
//! ℓ), verifies the misguided column order is actually followed, and
//! shows the constant-factor (but tunable) gaps in nodel/compcost and the
//! H2C-restored gap in base.

use crate::report::Table;
use rbp_core::{engine, CostModel, Instance, ModelKind};
use rbp_gadgets::grid::{self, GridConfig};
use rbp_solvers::api::{GreedySolver, Solver};
use rbp_solvers::{EvictionPolicy, GreedyConfig, SelectionRule};
use std::path::Path;

fn greedy_cfg() -> GreedyConfig {
    GreedyConfig {
        rule: SelectionRule::MostRedInputs,
        eviction: EvictionPolicy::MinUses,
    }
}

/// Regenerates the Figure-8 / Theorem-4 experiment.
pub fn run(out: &Path) {
    // --- oneshot: ratio grows with k' and ell ---
    let mut t = Table::new(
        "Fig. 8 / Thm 4 — greedy vs optimal on the grid (oneshot)",
        &[
            "ell",
            "k'",
            "n",
            "greedy",
            "diagonal-opt",
            "ratio",
            "trapped",
        ],
    );
    for (ell, kp) in [
        (3usize, 8usize),
        (3, 16),
        (3, 32),
        (3, 64),
        (4, 16),
        (5, 16),
        (6, 16),
    ] {
        let g = grid::build(GridConfig {
            ell,
            k_prime: kp,
            mis: 2,
        });
        let inst = g.instance(CostModel::oneshot());
        let rep = GreedySolver::with_config(greedy_cfg())
            .solve_default(&inst)
            .expect("feasible");
        let visits = g.decode_visits(&rep.computation_order());
        let trapped = visits == g.greedy_order();
        let opt_trace = g
            .grouped
            .emit(&inst, &g.optimal_order())
            .expect("valid order");
        let opt = engine::simulate(&inst, &opt_trace).expect("valid");
        let ratio = rep.cost.transfers as f64 / opt.cost.transfers.max(1) as f64;
        t.row_strings(vec![
            ell.to_string(),
            kp.to_string(),
            g.dag.n().to_string(),
            rep.cost.transfers.to_string(),
            opt.cost.transfers.to_string(),
            format!("{ratio:.2}"),
            trapped.to_string(),
        ]);
        assert!(
            trapped,
            "greedy escaped the misguidance at ell={ell}, k'={kp}"
        );
    }
    t.print();
    t.write_csv(out, "fig8").expect("write csv");

    // --- nodel / compcost: constant-factor, tunable via k' (App. A.4) ---
    let mut t2 = Table::new(
        "Fig. 8 — nodel/compcost variants: constant-factor gaps (App. A.4)",
        &[
            "model",
            "ell",
            "k'",
            "greedy (scaled)",
            "diagonal (scaled)",
            "ratio",
        ],
    );
    for kind in [ModelKind::NoDel, ModelKind::CompCost] {
        let model = CostModel::of_kind(kind);
        for ell in [3usize, 4, 5] {
            let g = grid::build(GridConfig::constant_k(ell));
            let inst = g.instance(model);
            let rep = GreedySolver::with_config(greedy_cfg())
                .solve_default(&inst)
                .expect("feasible");
            let opt_trace = g.grouped.emit(&inst, &g.optimal_order()).expect("valid");
            let opt = engine::simulate(&inst, &opt_trace).expect("valid");
            let (gs, os) = (
                rep.cost.scaled(model.epsilon()),
                opt.cost.scaled(model.epsilon()),
            );
            t2.row_strings(vec![
                kind.to_string(),
                ell.to_string(),
                g.k_prime.to_string(),
                gs.to_string(),
                os.to_string(),
                format!("{:.2}", gs as f64 / os.max(1) as f64),
            ]);
        }
    }
    t2.print();
    t2.write_csv(out, "fig8_constmodels").expect("write csv");

    // --- base: the plain grid is free (recomputation); H2C restores it ---
    let g = grid::build(GridConfig {
        ell: 3,
        k_prime: 8,
        mis: 2,
    });
    let base = g.instance(CostModel::base());
    let opt_trace = g.grouped.emit(&base, &g.optimal_order()).expect("valid");
    let opt = engine::simulate(&base, &opt_trace).expect("valid");
    println!(
        "  base sanity: plain grid optimal transfers = {} (recomputation collapses the cost —",
        opt.cost.transfers
    );
    println!("  the paper adds H2C to every source there; see Appendix A.4 and rbp-gadgets::h2c)");

    // H2C-restored base gap, at visit-order level (clever-greedy
    // interpretation of Appendix A.4: greedy ordering of first
    // computations, acquisition via oracle-cheapest moves). A larger grid
    // is needed here: the one-time H2C cost of the sources (Θ(ℓk'))
    // dilutes the Θ(ℓ²k') column-order toll — the very effect that drops
    // the base-model gap to Θ(n^{1/3}) in the paper.
    let g = grid::build(GridConfig {
        ell: 6,
        k_prime: 8,
        mis: 2,
    });
    let inst = g.instance(CostModel::base());
    let aug = rbp_gadgets::h2c::attach(
        &inst.dag().clone(),
        rbp_gadgets::h2c::H2cConfig::standard(g.r),
    );
    let aug_inst = Instance::new(aug.dag.clone(), g.r, CostModel::base());
    let (mut greedy_trace, state) = aug.prologue_trace(&aug_inst).expect("prologue");
    let mut st_g = state.clone();
    let mut tail = rbp_core::Pebbling::new();
    g.grouped
        .emit_onto(&aug_inst, &g.greedy_order(), &mut st_g, &mut tail)
        .expect("greedy order valid");
    greedy_trace.extend(&tail);
    let greedy_cost = engine::simulate(&aug_inst, &greedy_trace)
        .expect("valid")
        .cost;

    let (mut opt_trace2, state2) = aug.prologue_trace(&aug_inst).expect("prologue");
    let mut st_o = state2.clone();
    let mut tail2 = rbp_core::Pebbling::new();
    g.grouped
        .emit_onto(&aug_inst, &g.optimal_order(), &mut st_o, &mut tail2)
        .expect("optimal order valid");
    opt_trace2.extend(&tail2);
    let opt_cost = engine::simulate(&aug_inst, &opt_trace2)
        .expect("valid")
        .cost;
    println!(
        "  base + H2C: greedy-order {} vs diagonal-order {} transfers (ratio {:.2})",
        greedy_cost.transfers,
        opt_cost.transfers,
        greedy_cost.transfers as f64 / opt_cost.transfers.max(1) as f64
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8_runs() {
        let dir = std::env::temp_dir().join("rbp_fig8_test");
        super::run(&dir);
        assert!(dir.join("fig8.csv").exists());
        assert!(dir.join("fig8_constmodels.csv").exists());
    }
}

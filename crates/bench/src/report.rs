//! Table printing and CSV output shared by all experiments.

use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A rectangular results table: printed aligned to stdout and written as
/// CSV under `results/`.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Convenience for all-string rows.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect();
            println!("  {}", parts.join(" | "));
        };
        line(&self.header);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-")
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Writes the table as `<dir>/<name>.csv` and returns the path.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            let esc: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", esc.join(","))?;
        }
        Ok(path)
    }
}

/// The workspace root (where `BENCH_exact.json` and `Cargo.lock` live),
/// falling back to the current directory outside a checkout.
pub fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if root.join("Cargo.toml").exists() {
        root
    } else {
        PathBuf::from(".")
    }
}

/// The default results directory (`results/` under the workspace root,
/// falling back to the current directory).
pub fn results_dir() -> PathBuf {
    workspace_root().join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&[&1, &"x,y"]);
        let dir = std::env::temp_dir().join("rbp_report_test");
        let p = t.write_csv(&dir, "t1").unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&[&1]);
    }
}

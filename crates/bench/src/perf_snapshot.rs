//! `perf-snapshot`: recorded exact-solver throughput baselines.
//!
//! Sweeps a fixed instance matrix — {chain, pyramid, grid, layered,
//! matmul, fft} × {base, oneshot, nodel} at sizes that solve in
//! milliseconds, plus larger cells the incumbent-seeded solver makes
//! tractable — through every registry spec in [`SNAPSHOT_SPECS`] and
//! writes `BENCH_exact.json` (schema `rbp-perf-exact/v3`) with per-cell
//! median wall time, interned-state throughput, and search effort. The
//! file is committed at the workspace root so every PR leaves a perf
//! trajectory to compare against; CI regenerates it as an informational
//! artifact and runs [`check`] (`perf-check`) to annotate throughput
//! regressions against the committed baseline.
//!
//! Every row records the **registry spec** that produced it
//! (`"exact"` — the sequential path with the greedy incumbent seed —
//! and `"exact-parallel:4"` — the hash-sharded search). Diffs are keyed
//! by `(workload, model, spec)`, so adding a solver to the matrix is
//! one more spec string, not a schema change — which is exactly how the
//! multiprocessor rows ride along: [`mpp_cells`] adds `chain-mpp` and
//! `pyramid-mpp` cells measured under `exact@mpp:1` / `exact@mpp:2` /
//! `greedy@mpp:2`, with the `exact@mpp:1` optimum pinned equal to the
//! classic `exact` optimum on the same instance.
//!
//! The same instance matrix backs the `bench_exact_hotpath` and
//! `bench_exact_parallel` criterion targets, so interactive `cargo
//! bench` numbers and the recorded JSON stay comparable. Four extra
//! rows ([`measure_service`]) record the batch-solve service's
//! round-trip latency on a cache miss, a cache hit, a structured
//! overload shed (`service-shed`), and a crash-recovery snapshot
//! reload (`cache-reload`).

use crate::report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbp_core::{CostModel, Instance, ModelKind};
use rbp_graph::generate;
use rbp_solvers::api::Solution;
use rbp_solvers::registry;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// The snapshot's JSON schema id. v3 replaced the bare `threads` key
/// with the registry `spec` that produced each row (threads is kept as
/// a derived display column), so future solver specs extend the matrix
/// without schema churn.
pub const SCHEMA: &str = "rbp-perf-exact/v3";

/// The registry specs every cell is measured under: the
/// incumbent-seeded sequential path and the hash-sharded parallel
/// search.
pub const SNAPSHOT_SPECS: [&str; 2] = ["exact", "exact-parallel:4"];

/// The registry specs the multiprocessor rows ([`mpp_cells`]) are
/// measured under. `exact@mpp:1` doubles as a continuously-pinned
/// correctness cell: its recorded optimum must equal the classic
/// `exact` optimum on the same instance (the two state spaces are
/// isomorphic at `p = 1`), which
/// `mpp_rows_pin_the_single_processor_optimum` asserts.
pub const MPP_SNAPSHOT_SPECS: [&str; 3] = ["exact@mpp:1", "exact@mpp:2", "greedy@mpp:2"];

/// The thread count behind the parallel snapshot spec (also used by the
/// `bench_exact_parallel` criterion target).
pub const PARALLEL_THREADS: usize = 4;

/// The registry spec the scale-out cells ([`coarse_cells`]) are
/// measured under: hierarchical coarsening with the default
/// auto-sized partition and portfolio inner solver. These cells are
/// far beyond the exact frontier, so their `scaled_cost` column pins
/// the coarse *upper bound* trajectory rather than an optimum.
pub const COARSE_SNAPSHOT_SPECS: [&str; 1] = ["coarse"];

/// One workload × model cell of the perf matrix.
pub struct PerfCase {
    /// Workload family (`chain`, `pyramid`, `grid`, `layered`, `matmul`,
    /// `fft`, or one of the larger `pyramid5`/`grid5` cells).
    pub workload: &'static str,
    /// Cost-model name (`base`, `oneshot`, `nodel`).
    pub model: &'static str,
    /// The concrete instance solved by this cell.
    pub instance: Instance,
}

/// The models the snapshot tracks. `compcost` shares base's state space
/// (only edge weights differ), so it adds no distinct hot-path signal.
const MODELS: [(&str, ModelKind); 3] = [
    ("base", ModelKind::Base),
    ("oneshot", ModelKind::Oneshot),
    ("nodel", ModelKind::NoDel),
];

/// The fixed instance matrix. Sizes are chosen so each exact solve
/// finishes in at most a few hundred milliseconds optimized — the point
/// is a stable trajectory, not a stress test.
///
/// The red budget is per *cell*, not per workload, because the models'
/// state spaces scale oppositely in R on dense DAGs like matmul: base
/// (deletes + recomputation) needs enough slack that its optimum stays
/// near zero or its positive-cost frontier explodes, while nodel
/// (monotone pebbles) blows up when extra slack multiplies the reachable
/// monotone configurations.
pub fn cells() -> Vec<PerfCase> {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    // (workload, dag, [r_base, r_oneshot, r_nodel])
    let dags: Vec<(&'static str, rbp_graph::Dag, [usize; 3])> = vec![
        ("chain", generate::chain(12), [2; 3]),
        ("pyramid", rbp_gadgets::pyramid::build(4).dag, [3; 3]),
        // "grid": a time-tiled 3-point stencil, the 2-D grid workload
        ("grid", rbp_workloads::stencil::build(4, 2, 1).dag, [4; 3]),
        ("layered", generate::layered(3, 3, 2, &mut rng), [3; 3]),
        ("matmul", rbp_workloads::matmul::build(2).dag, [7, 5, 3]),
        ("fft", rbp_workloads::fft::build(2).dag, [3; 3]),
    ];
    let mut cases = Vec::with_capacity(dags.len() * MODELS.len());
    for (workload, dag, rs) in dags {
        for ((model, kind), r) in MODELS.into_iter().zip(rs) {
            cases.push(PerfCase {
                workload,
                model,
                instance: Instance::new(dag.clone(), r, CostModel::of_kind(kind)),
            });
        }
    }
    cases
}

/// Larger cells that the incumbent-seeded solver settles in under a
/// second: a height-5 pyramid and a width-5 stencil. Their base-model
/// variants at these sizes exceed the per-cell time budget (seconds of
/// search), so only the tractable model rows are recorded.
pub fn extra_cells() -> Vec<PerfCase> {
    vec![
        PerfCase {
            workload: "pyramid5",
            model: "base",
            instance: Instance::new(rbp_gadgets::pyramid::build(5).dag, 3, CostModel::base()),
        },
        PerfCase {
            workload: "pyramid5",
            model: "nodel",
            instance: Instance::new(rbp_gadgets::pyramid::build(5).dag, 3, CostModel::nodel()),
        },
        PerfCase {
            workload: "grid5",
            model: "oneshot",
            instance: Instance::new(
                rbp_workloads::stencil::build(5, 2, 1).dag,
                4,
                CostModel::oneshot(),
            ),
        },
        PerfCase {
            workload: "grid5",
            model: "nodel",
            instance: Instance::new(
                rbp_workloads::stencil::build(5, 2, 1).dag,
                4,
                CostModel::nodel(),
            ),
        },
    ]
}

/// Multiprocessor rows: a chain and a pyramid, each under the three
/// tracked models, solved by every spec in [`MPP_SNAPSHOT_SPECS`].
/// The `@mpp:P` specs lift the instance themselves
/// ([`rbp_core::Instance::with_procs`]), so the cells stay classic
/// instances and the `exact@mpp:1` rows remain directly comparable to
/// a classic `exact` solve. Sizes are smaller than the classic matrix
/// because the product state space carries one red plane *per
/// processor*.
pub fn mpp_cells() -> Vec<PerfCase> {
    let dags: Vec<(&'static str, rbp_graph::Dag, usize)> = vec![
        ("chain-mpp", generate::chain(8), 2),
        ("pyramid-mpp", rbp_gadgets::pyramid::build(3).dag, 3),
    ];
    let mut cases = Vec::with_capacity(dags.len() * MODELS.len());
    for (workload, dag, r) in dags {
        for (model, kind) in MODELS {
            cases.push(PerfCase {
                workload,
                model,
                instance: Instance::new(dag.clone(), r, CostModel::of_kind(kind)),
            });
        }
    }
    cases
}

/// Scale-out rows: matmul(16) and fft(64) under the Hong–Kung
/// conventions (`InitiallyBlue` sources, `RequireBlue` sinks — the
/// regime where the fractional bound engine has teeth), solved by the
/// `coarse` solver. Thousands of nodes; no exact spec could touch
/// these, which is the point of the hierarchical line.
pub fn coarse_cells() -> Vec<PerfCase> {
    use rbp_core::{SinkConvention, SourceConvention};
    let dags: Vec<(&'static str, rbp_graph::Dag, usize)> = vec![
        ("matmul16-coarse", rbp_workloads::matmul::build(16).dag, 4),
        ("fft64-coarse", rbp_workloads::fft::build(6).dag, 4),
    ];
    let mut cases = Vec::with_capacity(dags.len() * MODELS.len());
    for (workload, dag, r) in dags {
        for (model, kind) in MODELS {
            cases.push(PerfCase {
                workload,
                model,
                instance: Instance::new(dag.clone(), r, CostModel::of_kind(kind))
                    .with_source_convention(SourceConvention::InitiallyBlue)
                    .with_sink_convention(SinkConvention::RequireBlue),
            });
        }
    }
    cases
}

/// The full recorded matrix: the classic 6×3 cells plus the larger ones.
pub fn all_cells() -> Vec<PerfCase> {
    let mut cs = cells();
    cs.extend(extra_cells());
    cs
}

/// One measured cell of the snapshot.
pub struct CellResult {
    /// Workload family.
    pub workload: String,
    /// Cost-model name.
    pub model: String,
    /// DAG size.
    pub n: usize,
    /// Red-pebble budget.
    pub r: usize,
    /// The registry spec that produced this row.
    pub spec: String,
    /// Worker threads the solve ran with (derived from the solver's
    /// stats; 1 = sequential + incumbent).
    pub threads: usize,
    /// Median wall time of one solve, nanoseconds.
    pub median_ns: u128,
    /// Distinct states interned by the median-representative solve.
    pub states_seen: usize,
    /// States popped from the queue.
    pub states_expanded: usize,
    /// Interned-state throughput: `states_seen / median_seconds`. The
    /// intern path dominates the expand loop, so this is the headline
    /// "how fast is the hot path" number.
    pub states_per_sec: u64,
    /// The optimum found (scaled cost), pinning correctness alongside
    /// speed.
    pub scaled_cost: u128,
}

/// Solves `cases` under every registry spec in `specs`, `samples` times
/// each, reporting the median-time run per (cell, spec) pair.
pub fn measure_cases(cases: &[PerfCase], samples: usize, specs: &[&str]) -> Vec<CellResult> {
    assert!(samples >= 1);
    let mut results = Vec::with_capacity(cases.len() * specs.len());
    for case in cases {
        for &spec in specs {
            let solver = registry::solver(spec).expect("snapshot specs parse");
            let mut runs: Vec<(u128, Solution)> = Vec::with_capacity(samples);
            for _ in 0..samples {
                let t0 = Instant::now();
                let sol = solver
                    .solve_default(&case.instance)
                    .expect("perf cells are feasible");
                runs.push((t0.elapsed().as_nanos(), sol));
            }
            // the stats must come from the SAME run as the median time:
            // the sharded search's states_seen varies run to run, and
            // mixing runs would skew states_per_sec by that variance
            runs.sort_unstable_by_key(|(ns, _)| *ns);
            let (median_ns, sol) = &runs[runs.len() / 2];
            let median_ns = (*median_ns).max(1);
            let states_seen = sol.states_seen().unwrap_or(0) as usize;
            // specs that report no search effort (the greedy family)
            // record solves/sec instead, mirroring the service rows, so
            // the perf-check throughput diff stays meaningful for them
            let states_per_sec = if states_seen == 0 {
                (1_000_000_000 / median_ns) as u64
            } else {
                ((states_seen as u128 * 1_000_000_000) / median_ns) as u64
            };
            results.push(CellResult {
                workload: case.workload.to_string(),
                model: case.model.to_string(),
                n: case.instance.dag().n(),
                r: case.instance.red_limit(),
                spec: spec.to_string(),
                threads: sol.stats.get("threads").unwrap_or(1) as usize,
                median_ns,
                states_seen,
                states_expanded: sol.states_expanded().unwrap_or(0) as usize,
                states_per_sec,
                scaled_cost: sol.scaled_cost(&case.instance),
            });
        }
    }
    results
}

/// Measures the full recorded matrix at [`SNAPSHOT_SPECS`], the
/// multiprocessor rows ([`mpp_cells`] at [`MPP_SNAPSHOT_SPECS`]), plus
/// the batch-solve service round-trip cells ([`measure_service`]).
pub fn measure(samples: usize) -> Vec<CellResult> {
    let mut results = measure_cases(&all_cells(), samples, &SNAPSHOT_SPECS);
    results.extend(measure_cases(&mpp_cells(), samples, &MPP_SNAPSHOT_SPECS));
    results.extend(measure_cases(
        &coarse_cells(),
        samples,
        &COARSE_SNAPSHOT_SPECS,
    ));
    results.extend(measure_service(samples));
    results
}

/// Round-trip latency of the batch-solve service (`rbp-service`) on the
/// grid cell, recorded as two extra rows:
///
/// - `service-miss` — submit → terminal event against a cold cache,
///   i.e. queueing + canonical-key hashing + a full solve;
/// - `service-hit` — the same request answered by the memoization
///   cache, i.e. the pure service overhead.
///
/// `median_ns` is the request round trip; `states_per_sec` doubles as
/// **requests/sec** (`1e9 / median_ns`) for these rows, so the same
/// perf-check threshold machinery covers service regressions. The
/// states columns carry the solve behind the cached entry.
pub fn measure_service(samples: usize) -> Vec<CellResult> {
    use rbp_service::{JobRequest, Server, ServerConfig};
    assert!(samples >= 1);
    let spec = "exact";
    let instance = Instance::new(
        rbp_workloads::stencil::build(4, 2, 1).dag,
        4,
        CostModel::oneshot(),
    );
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    };
    let request = |id: &str| JobRequest {
        id: id.to_string(),
        spec: spec.to_string(),
        instance: instance.clone(),
        options: Default::default(),
    };
    let round_trip = |server: &Server, id: &str| -> (u128, Solution) {
        let t0 = Instant::now();
        let events = server.submit_collect(request(id)).expect("server accepts");
        let solution = events
            .iter()
            .find_map(|ev| match ev {
                rbp_service::Event::Done { solution, .. } => Some(solution),
                _ => None,
            })
            .expect("perf cells solve");
        (t0.elapsed().as_nanos(), solution)
    };

    // misses: a fresh server (and thus a cold cache) per sample —
    // server startup is outside the timed window
    let mut miss_runs: Vec<(u128, Solution)> = Vec::with_capacity(samples);
    for i in 0..samples {
        let server = Server::start(config);
        miss_runs.push(round_trip(&server, &format!("miss-{i}")));
        server.shutdown();
    }

    // hits: one server, warmed once, then timed resubmissions
    let server = Server::start(config);
    let _ = round_trip(&server, "warm");
    let mut hit_runs: Vec<(u128, Solution)> = Vec::with_capacity(samples);
    for i in 0..samples {
        hit_runs.push(round_trip(&server, &format!("hit-{i}")));
    }
    assert_eq!(server.stats().solves, 1, "hits must not re-solve");
    server.shutdown();

    let mut results = Vec::with_capacity(4);
    for (workload, mut runs) in [("service-miss", miss_runs), ("service-hit", hit_runs)] {
        runs.sort_unstable_by_key(|(ns, _)| *ns);
        let (median_ns, sol) = &runs[runs.len() / 2];
        let median_ns = (*median_ns).max(1);
        results.push(CellResult {
            workload: workload.to_string(),
            model: "oneshot".to_string(),
            n: instance.dag().n(),
            r: instance.red_limit(),
            spec: spec.to_string(),
            threads: 1,
            median_ns,
            states_seen: sol.states_seen().unwrap_or(0) as usize,
            states_expanded: sol.states_expanded().unwrap_or(0) as usize,
            states_per_sec: (1_000_000_000 / median_ns) as u64,
            scaled_cost: sol.scaled_cost(&instance),
        });
    }
    results.push(measure_service_shed(samples));
    results.push(measure_cache_reload(samples));
    results
}

/// `service-shed` — the cost of a structured overload rejection: a
/// server with a full queue, a busy worker, and a zero admission wait
/// turns a submission around as `Overloaded` without blocking. The row
/// keeps the perf trajectory of the hot shed path (hold it cheap: a
/// loaded server says "come back later" thousands of times a second).
/// `states_per_sec` doubles as sheds/sec; the states and cost columns
/// carry the solve of the job that was occupying the worker.
fn measure_service_shed(samples: usize) -> CellResult {
    use rbp_solvers::{Registry, SolveCtx, SolveError, Solver};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    /// Blocks until the shared gate opens, then answers with greedy —
    /// deterministic worker occupancy without timing assumptions.
    struct Gate(Arc<(Mutex<bool>, Condvar)>);
    impl Solver for Gate {
        fn name(&self) -> &str {
            "gate"
        }
        fn solve(&self, instance: &Instance, ctx: &SolveCtx) -> Result<Solution, SolveError> {
            let (lock, cv) = &*self.0;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            rbp_solvers::GreedySolver::new().solve(instance, ctx)
        }
    }

    let instance = Instance::new(
        rbp_workloads::stencil::build(4, 2, 1).dag,
        4,
        CostModel::oneshot(),
    );
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let mut reg = Registry::with_builtins();
    {
        let gate = Arc::clone(&gate);
        reg.register(
            "gate",
            "perf: blocks until opened, then greedy",
            move |_| Ok(Box::new(Gate(Arc::clone(&gate)))),
        );
    }
    let server = rbp_service::Server::with_registry(
        rbp_service::ServerConfig {
            workers: 1,
            queue_capacity: 1,
            admission_wait: Duration::ZERO, // pure shedding, no blocking
        },
        reg,
    );
    let request = |id: &str, spec: &str| rbp_service::JobRequest {
        id: id.to_string(),
        spec: spec.to_string(),
        instance: instance.clone(),
        options: Default::default(),
    };
    // occupy the only worker, then fill the one queue slot
    let rx_busy = server
        .submit_collect(request("busy", "gate"))
        .expect("first job is accepted");
    while server.stats().queued > 0 {
        std::thread::yield_now();
    }
    let rx_fill = server
        .submit_collect(request("fill", "gate"))
        .expect("second job fills the queue");

    let mut runs: Vec<u128> = Vec::with_capacity(samples);
    for i in 0..samples {
        let (tx, _rx) = std::sync::mpsc::channel();
        let t0 = Instant::now();
        let err = server.submit(request(&format!("shed-{i}"), "exact"), tx);
        runs.push(t0.elapsed().as_nanos());
        assert!(
            matches!(err, Err(rbp_service::SubmitError::Overloaded { .. })),
            "a full queue with zero admission wait must shed"
        );
    }

    // release the gated jobs and keep their solution for the row
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    let solution = [rx_busy, rx_fill]
        .iter()
        .find_map(|rx| {
            rx.iter().find_map(|ev| match ev {
                rbp_service::Event::Done { solution, .. } => Some(solution),
                _ => None,
            })
        })
        .expect("gated jobs complete after release");
    server.shutdown();

    runs.sort_unstable();
    let median_ns = runs[runs.len() / 2].max(1);
    CellResult {
        workload: "service-shed".to_string(),
        model: "oneshot".to_string(),
        n: instance.dag().n(),
        r: instance.red_limit(),
        spec: "exact".to_string(),
        threads: 1,
        median_ns,
        states_seen: solution.states_seen().unwrap_or(0) as usize,
        states_expanded: solution.states_expanded().unwrap_or(0) as usize,
        states_per_sec: (1_000_000_000 / median_ns) as u64,
        scaled_cost: solution.scaled_cost(&instance),
    }
}

/// `cache-reload` — crash-recovery throughput: the time to load a
/// `cache v1` snapshot of 64 solved chain instances into a cold
/// [`rbp_service::SolutionCache`]. `states_seen` records the entry
/// count; `states_per_sec` doubles as reloads/sec.
fn measure_cache_reload(samples: usize) -> CellResult {
    const ENTRIES: usize = 64;
    let warm = rbp_service::SolutionCache::new();
    let mut last = None;
    for n in 0..ENTRIES {
        let inst = Instance::new(generate::chain(3 + n), 2, CostModel::oneshot());
        let sol = registry::solve("greedy", &inst).expect("chains solve");
        let scaled = sol.scaled_cost(&inst);
        warm.insert_or_upgrade(inst.canonical_key(), "greedy", sol.clone(), scaled);
        last = Some((inst, sol));
    }
    let snapshot = warm.write_snapshot();
    let (instance, solution) = last.expect("at least one entry");

    let mut runs: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let cold = rbp_service::SolutionCache::new();
        let t0 = Instant::now();
        let report = cold.load_snapshot(&snapshot);
        runs.push(t0.elapsed().as_nanos());
        assert_eq!(report.recovered, ENTRIES as u64, "lossless reload");
        assert_eq!(report.skipped, 0);
    }
    runs.sort_unstable();
    let median_ns = runs[runs.len() / 2].max(1);
    CellResult {
        workload: "cache-reload".to_string(),
        model: "oneshot".to_string(),
        n: instance.dag().n(),
        r: instance.red_limit(),
        spec: "greedy".to_string(),
        threads: 1,
        median_ns,
        states_seen: ENTRIES,
        states_expanded: 0,
        states_per_sec: (1_000_000_000 / median_ns) as u64,
        scaled_cost: solution.scaled_cost(&instance),
    }
}

/// Writes the snapshot as `<dir>/BENCH_exact.json` and returns the path.
pub fn write_json(results: &[CellResult], dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_exact.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"schema\": \"{SCHEMA}\",")?;
    writeln!(
        f,
        "  \"description\": \"exact-solver hot-path baselines per registry spec; regenerate \
         with `cargo run --release -p rbp-bench --bin experiments -- perf-snapshot`, diff with \
         `... -- perf-check`\","
    )?;
    writeln!(
        f,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, c) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"workload\": \"{}\", \"model\": \"{}\", \"n\": {}, \"r\": {}, \
             \"spec\": \"{}\", \"threads\": {}, \"median_ns\": {}, \"states_seen\": {}, \
             \"states_expanded\": {}, \"states_per_sec\": {}, \"scaled_cost\": {}}}{}",
            c.workload,
            c.model,
            c.n,
            c.r,
            c.spec,
            c.threads,
            c.median_ns,
            c.states_seen,
            c.states_expanded,
            c.states_per_sec,
            c.scaled_cost,
            comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(path)
}

fn print_table(results: &[CellResult]) {
    let mut table = Table::new(
        "perf-snapshot — exact solver hot path (median over samples)",
        &[
            "workload", "model", "n", "R", "spec", "ms", "states", "expanded", "states/s", "cost",
        ],
    );
    for c in results {
        table.row_strings(vec![
            c.workload.clone(),
            c.model.clone(),
            c.n.to_string(),
            c.r.to_string(),
            c.spec.clone(),
            format!("{:.3}", c.median_ns as f64 / 1e6),
            c.states_seen.to_string(),
            c.states_expanded.to_string(),
            c.states_per_sec.to_string(),
            c.scaled_cost.to_string(),
        ]);
    }
    table.print();
}

/// Runs the snapshot (5 samples per cell) and writes
/// `<dir>/BENCH_exact.json`, printing the matrix as a table.
pub fn run(dir: &Path) {
    run_with(dir, 5)
}

/// Like [`run`] with a configurable sample count (tests use 1).
pub fn run_with(dir: &Path, samples: usize) {
    let results = measure(samples);
    print_table(&results);
    let path = write_json(&results, dir).expect("write BENCH_exact.json");
    println!("  wrote {}", path.display());
}

// ---------------------------------------------------------------------
// perf-check: diff a fresh measurement against the committed baseline
// ---------------------------------------------------------------------

/// One cell parsed back out of a committed `BENCH_exact.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedCell {
    /// Workload family.
    pub workload: String,
    /// Cost-model name.
    pub model: String,
    /// The registry spec that produced the row (the diff key).
    pub spec: String,
    /// Recorded median wall time, nanoseconds.
    pub median_ns: u128,
    /// Recorded interned-state throughput.
    pub states_per_sec: u64,
    /// Recorded optimum (scaled cost).
    pub scaled_cost: u128,
}

pub(crate) fn str_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

pub(crate) fn num_field(line: &str, name: &str) -> Option<u128> {
    let tag = format!("\"{name}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The `host_parallelism` a snapshot was recorded at, when present.
pub fn parsed_host_parallelism(json: &str) -> Option<usize> {
    json.lines()
        .find(|l| l.contains("\"host_parallelism\""))
        .and_then(|l| num_field(l, "host_parallelism"))
        .map(|v| v as usize)
}

/// Parses the committed snapshot (own fixed format, no JSON dependency).
/// Returns `None` when the schema line is missing or not `v2` — callers
/// then skip the diff and ask for a regeneration.
pub fn parse_snapshot(json: &str) -> Option<Vec<ParsedCell>> {
    if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return None;
    }
    let mut cells = Vec::new();
    for line in json.lines() {
        if !line.trim_start().starts_with("{\"workload\"") {
            continue;
        }
        cells.push(ParsedCell {
            workload: str_field(line, "workload")?,
            model: str_field(line, "model")?,
            spec: str_field(line, "spec")?,
            median_ns: num_field(line, "median_ns")?,
            states_per_sec: num_field(line, "states_per_sec")? as u64,
            scaled_cost: num_field(line, "scaled_cost")?,
        });
    }
    Some(cells)
}

/// A cell regresses when fresh throughput drops below this fraction of
/// the committed baseline.
pub const REGRESSION_THRESHOLD: f64 = 0.75;

/// Cells whose committed median is below this (sub-5 ms solves) use
/// [`NOISE_THRESHOLD`] instead: at that scale, scheduler jitter alone
/// swings states/sec past 25%, and a warning that fires on noise trains
/// people to ignore it.
pub const NOISE_FLOOR_NS: u128 = 5_000_000;

/// Relaxed threshold for sub-[`NOISE_FLOOR_NS`] cells.
pub const NOISE_THRESHOLD: f64 = 0.40;

/// A fresh 3-sample measurement of the matrix, in diffable form.
fn measure_parsed() -> Vec<ParsedCell> {
    measure(3)
        .into_iter()
        .map(|c| ParsedCell {
            workload: c.workload,
            model: c.model,
            spec: c.spec,
            median_ns: c.median_ns,
            states_per_sec: c.states_per_sec,
            scaled_cost: c.scaled_cost,
        })
        .collect()
}

/// The `HEAD`-committed snapshot, when `dir` is inside a git checkout.
fn git_show_baseline(dir: &Path) -> Option<String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["show", "HEAD:BENCH_exact.json"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    String::from_utf8(out.stdout).ok()
}

/// `perf-check`: diffs fresh numbers against the committed
/// `BENCH_exact.json` baseline, emitting one GitHub Actions
/// `::warning::` annotation per cell regressing more than 25% in
/// states/sec (and an `::error::` if any recorded optimum drifted, which
/// would be a correctness bug, not a perf one). Non-gating: the process
/// always exits 0; returns the number of regressed cells.
///
/// The baseline is `HEAD`'s version of the file (falling back to the
/// on-disk copy outside a git checkout). When the environment sets
/// `PERF_CHECK_REUSE_SNAPSHOT=1` — the CI perf job does, right after
/// its `perf-snapshot` step regenerates the on-disk file — the on-disk
/// cells are reused as the fresh side instead of measuring the whole
/// matrix a second time. Reuse is opt-in only: inferring it from the
/// file differing from `HEAD` would let a stale leftover snapshot
/// masquerade as a measurement of the current code.
pub fn check(dir: &Path) -> usize {
    let path = dir.join("BENCH_exact.json");
    let disk = std::fs::read_to_string(&path).ok();
    let Some(committed) = git_show_baseline(dir).or_else(|| disk.clone()) else {
        println!(
            "perf-check: no committed {} — nothing to diff",
            path.display()
        );
        return 0;
    };
    let Some(baseline) = parse_snapshot(&committed) else {
        println!(
            "perf-check: {} is not schema {SCHEMA}; regenerate with `experiments perf-snapshot`",
            path.display()
        );
        return 0;
    };
    let reuse = std::env::var("PERF_CHECK_REUSE_SNAPSHOT").is_ok_and(|v| v == "1");
    let fresh: Vec<ParsedCell> = match disk.as_deref().filter(|d| reuse && *d != committed) {
        Some(regenerated) => match parse_snapshot(regenerated) {
            Some(cells) => {
                println!("perf-check: reusing the regenerated on-disk snapshot as the fresh side");
                cells
            }
            None => measure_parsed(),
        },
        None => measure_parsed(),
    };
    // throughput is only comparable within a host class: a baseline
    // recorded on a different core count (say a 1-core container vs a
    // 4-vCPU runner) puts every parallel row off by the hardware delta,
    // drowning real regressions in false "ok (500%)" readings. Cost and
    // coverage are still checked; throughput diffs are skipped.
    let here = std::thread::available_parallelism().map_or(0, |p| p.get());
    let recorded = parsed_host_parallelism(&committed).unwrap_or(0);
    let comparable_host = recorded == here;
    if !comparable_host {
        println!(
            "perf-check: baseline host_parallelism {recorded} != this host's {here}; \
             skipping throughput diffs (cost/coverage checks still run) — \
             re-commit a snapshot from this host class to restore them"
        );
    }
    let mut regressed = 0;
    for new in &fresh {
        let Some(old) = baseline
            .iter()
            .find(|c| c.workload == new.workload && c.model == new.model && c.spec == new.spec)
        else {
            // one-sided cell: a spec or atlas row added this PR has no
            // baseline yet — inform and skip, never count, so growing
            // the matrix can't trip the check
            println!(
                "perf-check: new cell {}/{}@{} (no baseline; skipped)",
                new.workload, new.model, new.spec
            );
            continue;
        };
        if new.scaled_cost != old.scaled_cost {
            println!(
                "::error title=optimum drift::{}/{}@{}: scaled cost {} != committed {}",
                new.workload, new.model, new.spec, new.scaled_cost, old.scaled_cost
            );
            regressed += 1;
            continue;
        }
        if !comparable_host {
            continue;
        }
        let ratio = new.states_per_sec as f64 / old.states_per_sec.max(1) as f64;
        let threshold = if old.median_ns < NOISE_FLOOR_NS {
            NOISE_THRESHOLD
        } else {
            REGRESSION_THRESHOLD
        };
        if ratio < threshold {
            regressed += 1;
            println!(
                "::warning title=perf regression::{}/{}@{}: {} states/s vs committed {} ({:.0}%)",
                new.workload,
                new.model,
                new.spec,
                new.states_per_sec,
                old.states_per_sec,
                ratio * 100.0
            );
        } else {
            println!(
                "perf-check: {}/{}@{} ok ({:.0}% of baseline)",
                new.workload,
                new.model,
                new.spec,
                ratio * 100.0
            );
        }
    }
    // mirror direction: a baseline cell with no fresh counterpart means
    // the matrix lost coverage — warn so it's visible, but skip it in
    // the count: one-sided cells (either direction) must never trip the
    // check, or retiring a spec would break CI the same way adding one
    // used to
    let mut lost = 0;
    for old in &baseline {
        if !fresh
            .iter()
            .any(|c| c.workload == old.workload && c.model == old.model && c.spec == old.spec)
        {
            println!(
                "::warning title=lost coverage::{}/{}@{}: in the committed baseline but not \
                 measured anymore (skipped)",
                old.workload, old.model, old.spec
            );
            lost += 1;
        }
    }
    println!(
        "perf-check: {regressed} regressed cell(s) out of {} measured, {lost} baseline cell(s) \
         no longer covered (one-sided cells are not counted)",
        fresh.len()
    );
    regressed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_the_classic_matrix_and_writes_json() {
        // one cheap sequential sample per classic cell: this test pins
        // the wiring and the file format, not the timings (the committed
        // file is regenerated in release by CI / the experiments binary)
        let dir =
            std::env::temp_dir().join(format!("rbp_perf_snapshot_test_{}", std::process::id()));
        let results = measure_cases(&cells(), 1, &["exact"]);
        let path = write_json(&results, &dir).unwrap();
        let json = std::fs::read_to_string(path).unwrap();
        assert!(json.contains("\"schema\": \"rbp-perf-exact/v3\""));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.matches("\"spec\": \"exact\"").count() >= 18);
        for w in ["chain", "pyramid", "grid", "layered", "matmul", "fft"] {
            assert!(
                json.contains(&format!("\"workload\": \"{w}\"")),
                "{w} missing"
            );
        }
        for m in ["base", "oneshot", "nodel"] {
            assert!(json.contains(&format!("\"model\": \"{m}\"")), "{m} missing");
        }
    }

    #[test]
    fn service_cells_record_hit_miss_shed_and_reload_round_trips() {
        let rows = measure_service(1);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].workload, "service-miss");
        assert_eq!(rows[1].workload, "service-hit");
        assert_eq!(rows[2].workload, "service-shed");
        assert_eq!(rows[3].workload, "cache-reload");
        for row in &rows {
            assert!(row.states_per_sec > 0, "requests/sec must be recorded");
        }
        // the hit is answered from the cache, so both rows carry the
        // same engine-validated optimum
        assert_eq!(rows[0].scaled_cost, rows[1].scaled_cost);
        // the shed path must be far cheaper than an actual solve
        assert!(rows[2].median_ns <= rows[0].median_ns);
        assert_eq!(rows[3].states_seen, 64, "reload row records entry count");
    }

    #[test]
    fn cells_are_exactly_the_documented_matrix() {
        let cs = cells();
        assert_eq!(cs.len(), 18, "6 workloads x 3 models");
        assert!(cs.iter().all(|c| c.instance.is_feasible()));
        let extra = extra_cells();
        assert_eq!(extra.len(), 4, "larger incumbent-tractable cells");
        assert!(extra.iter().all(|c| c.instance.is_feasible()));
        assert_eq!(all_cells().len(), 22);
        let mpp = mpp_cells();
        assert_eq!(mpp.len(), 6, "2 mpp workloads x 3 models");
        assert!(mpp.iter().all(|c| c.instance.is_feasible()));
        // the cells stay classic: the @mpp:P specs do the lifting
        assert!(mpp.iter().all(|c| c.instance.mpp().is_none()));
    }

    #[test]
    fn mpp_rows_pin_the_single_processor_optimum() {
        // every recorded exact@mpp:1 cell must carry the same scaled
        // optimum as the classic exact solver on the same instance —
        // the acceptance bar for the p = 1 ≡ sequential equivalence
        let rows = measure_cases(&mpp_cells(), 1, &["exact@mpp:1"]);
        for (row, case) in rows.iter().zip(mpp_cells().iter()) {
            let classic = registry::solve("exact", &case.instance).expect("mpp cells solve");
            assert_eq!(
                row.scaled_cost,
                classic.scaled_cost(&case.instance),
                "{}/{}: exact@mpp:1 drifted from the classic optimum",
                row.workload,
                row.model
            );
        }
        // greedy rows report no search effort; their throughput column
        // must fall back to solves/sec rather than recording zero
        // (zero would trip perf-check's ratio test forever)
        let greedy = measure_cases(&mpp_cells()[..1], 1, &["greedy@mpp:2"]);
        assert!(greedy[0].states_seen == 0 && greedy[0].states_per_sec > 0);
    }

    #[test]
    fn snapshot_roundtrips_through_the_parser() {
        let dir = std::env::temp_dir().join(format!("rbp_perf_parse_test_{}", std::process::id()));
        // tiny subset, two specs, to exercise the spec column
        let results = measure_cases(&cells()[..2], 1, &["exact", "exact-parallel:2"]);
        let path = write_json(&results, &dir).unwrap();
        let parsed =
            parse_snapshot(&std::fs::read_to_string(path).unwrap()).expect("own output must parse");
        assert_eq!(parsed.len(), results.len());
        for (p, r) in parsed.iter().zip(&results) {
            assert_eq!(p.workload, r.workload);
            assert_eq!(p.model, r.model);
            assert_eq!(p.spec, r.spec);
            assert_eq!(p.median_ns, r.median_ns);
            assert_eq!(p.states_per_sec, r.states_per_sec);
            assert_eq!(p.scaled_cost, r.scaled_cost);
        }
        // v2 files (or junk) refuse to parse instead of mis-diffing
        assert!(parse_snapshot("{\"schema\": \"rbp-perf-exact/v2\"}").is_none());
    }
}

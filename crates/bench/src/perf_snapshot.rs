//! `perf-snapshot`: recorded exact-solver throughput baselines.
//!
//! Sweeps a fixed instance matrix — {chain, pyramid, grid, layered,
//! matmul, fft} × {base, oneshot, nodel} at sizes that solve in
//! milliseconds — through [`rbp_solvers::solve_exact`] and writes
//! `BENCH_exact.json` with per-cell median wall time, interned-state
//! throughput, and search effort. The file is committed at the workspace
//! root so every PR leaves a perf trajectory to compare against; CI
//! regenerates it as an informational artifact.
//!
//! The same instance matrix backs the `bench_exact_hotpath` criterion
//! target, so interactive `cargo bench` numbers and the recorded JSON
//! stay comparable.

use crate::report::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbp_core::{CostModel, Instance, ModelKind};
use rbp_graph::generate;
use rbp_solvers::solve_exact;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

/// One workload × model cell of the perf matrix.
pub struct PerfCase {
    /// Workload family (`chain`, `pyramid`, `grid`, `layered`, `matmul`,
    /// `fft`).
    pub workload: &'static str,
    /// Cost-model name (`base`, `oneshot`, `nodel`).
    pub model: &'static str,
    /// The concrete instance solved by this cell.
    pub instance: Instance,
}

/// The models the snapshot tracks. `compcost` shares base's state space
/// (only edge weights differ), so it adds no distinct hot-path signal.
const MODELS: [(&str, ModelKind); 3] = [
    ("base", ModelKind::Base),
    ("oneshot", ModelKind::Oneshot),
    ("nodel", ModelKind::NoDel),
];

/// The fixed instance matrix. Sizes are chosen so each exact solve
/// finishes in at most a few hundred milliseconds optimized — the point
/// is a stable trajectory, not a stress test.
///
/// The red budget is per *cell*, not per workload, because the models'
/// state spaces scale oppositely in R on dense DAGs like matmul: base
/// (deletes + recomputation) needs enough slack that its optimum stays
/// near zero or its positive-cost frontier explodes, while nodel
/// (monotone pebbles) blows up when extra slack multiplies the reachable
/// monotone configurations.
pub fn cells() -> Vec<PerfCase> {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    // (workload, dag, [r_base, r_oneshot, r_nodel])
    let dags: Vec<(&'static str, rbp_graph::Dag, [usize; 3])> = vec![
        ("chain", generate::chain(12), [2; 3]),
        ("pyramid", rbp_gadgets::pyramid::build(4).dag, [3; 3]),
        // "grid": a time-tiled 3-point stencil, the 2-D grid workload
        ("grid", rbp_workloads::stencil::build(4, 2, 1).dag, [4; 3]),
        ("layered", generate::layered(3, 3, 2, &mut rng), [3; 3]),
        ("matmul", rbp_workloads::matmul::build(2).dag, [7, 5, 3]),
        ("fft", rbp_workloads::fft::build(2).dag, [3; 3]),
    ];
    let mut cases = Vec::with_capacity(dags.len() * MODELS.len());
    for (workload, dag, rs) in dags {
        for ((model, kind), r) in MODELS.into_iter().zip(rs) {
            cases.push(PerfCase {
                workload,
                model,
                instance: Instance::new(dag.clone(), r, CostModel::of_kind(kind)),
            });
        }
    }
    cases
}

/// One measured cell of the snapshot.
pub struct CellResult {
    /// Workload family.
    pub workload: &'static str,
    /// Cost-model name.
    pub model: &'static str,
    /// DAG size.
    pub n: usize,
    /// Red-pebble budget.
    pub r: usize,
    /// Median wall time of one solve, nanoseconds.
    pub median_ns: u128,
    /// Distinct states interned by the median-representative solve.
    pub states_seen: usize,
    /// States popped from the queue.
    pub states_expanded: usize,
    /// Interned-state throughput: `states_seen / median_seconds`. The
    /// intern path dominates the expand loop, so this is the headline
    /// "how fast is the hot path" number.
    pub states_per_sec: u64,
    /// The optimum found (scaled cost), pinning correctness alongside
    /// speed.
    pub scaled_cost: u128,
}

/// Solves every cell `samples` times and reports the median-time run.
pub fn measure(samples: usize) -> Vec<CellResult> {
    assert!(samples >= 1);
    cells()
        .iter()
        .map(|case| {
            let mut times: Vec<u128> = Vec::with_capacity(samples);
            let mut rep = None;
            for _ in 0..samples {
                let t0 = Instant::now();
                let r = solve_exact(&case.instance).expect("perf cells are feasible");
                times.push(t0.elapsed().as_nanos());
                rep = Some(r);
            }
            times.sort_unstable();
            let median_ns = times[times.len() / 2].max(1);
            let rep = rep.expect("at least one sample");
            CellResult {
                workload: case.workload,
                model: case.model,
                n: case.instance.dag().n(),
                r: case.instance.red_limit(),
                median_ns,
                states_seen: rep.states_seen,
                states_expanded: rep.states_expanded,
                states_per_sec: ((rep.states_seen as u128 * 1_000_000_000) / median_ns) as u64,
                scaled_cost: rep.cost.scaled(case.instance.model().epsilon()),
            }
        })
        .collect()
}

/// Writes the snapshot as `<dir>/BENCH_exact.json` and returns the path.
pub fn write_json(results: &[CellResult], dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_exact.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"schema\": \"rbp-perf-exact/v1\",")?;
    writeln!(
        f,
        "  \"description\": \"exact-solver hot-path baselines; regenerate with `cargo run --release -p rbp-bench --bin experiments -- perf-snapshot`\","
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, c) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"workload\": \"{}\", \"model\": \"{}\", \"n\": {}, \"r\": {}, \
             \"median_ns\": {}, \"states_seen\": {}, \"states_expanded\": {}, \
             \"states_per_sec\": {}, \"scaled_cost\": {}}}{}",
            c.workload,
            c.model,
            c.n,
            c.r,
            c.median_ns,
            c.states_seen,
            c.states_expanded,
            c.states_per_sec,
            c.scaled_cost,
            comma
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(path)
}

/// Runs the snapshot (5 samples per cell) and writes
/// `<dir>/BENCH_exact.json`, printing the matrix as a table.
pub fn run(dir: &Path) {
    run_with(dir, 5)
}

/// Like [`run`] with a configurable sample count (tests use 1).
pub fn run_with(dir: &Path, samples: usize) {
    let results = measure(samples);
    let mut table = Table::new(
        "perf-snapshot — exact solver hot path (median over samples)",
        &[
            "workload", "model", "n", "R", "ms", "states", "expanded", "states/s", "cost",
        ],
    );
    for c in &results {
        table.row_strings(vec![
            c.workload.to_string(),
            c.model.to_string(),
            c.n.to_string(),
            c.r.to_string(),
            format!("{:.3}", c.median_ns as f64 / 1e6),
            c.states_seen.to_string(),
            c.states_expanded.to_string(),
            c.states_per_sec.to_string(),
            c.scaled_cost.to_string(),
        ]);
    }
    table.print();
    let path = write_json(&results, dir).expect("write BENCH_exact.json");
    println!("  wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_the_full_matrix_and_writes_json() {
        let dir =
            std::env::temp_dir().join(format!("rbp_perf_snapshot_test_{}", std::process::id()));
        run_with(&dir, 1);
        let json = std::fs::read_to_string(dir.join("BENCH_exact.json")).unwrap();
        assert!(json.contains("\"schema\": \"rbp-perf-exact/v1\""));
        // at least 6 workload × model cells recorded with throughput
        assert!(json.matches("\"states_per_sec\"").count() >= 6);
        for w in ["chain", "pyramid", "grid", "layered", "matmul", "fft"] {
            assert!(
                json.contains(&format!("\"workload\": \"{w}\"")),
                "{w} missing"
            );
        }
        for m in ["base", "oneshot", "nodel"] {
            assert!(json.contains(&format!("\"model\": \"{m}\"")), "{m} missing");
        }
    }

    #[test]
    fn cells_are_exactly_the_documented_matrix() {
        let cs = cells();
        assert_eq!(cs.len(), 18, "6 workloads x 3 models");
        assert!(cs.iter().all(|c| c.instance.is_feasible()));
    }
}

//! Figures 3–4: the time-memory tradeoff staircase. Measured per model:
//! the oneshot staircase opt(d+2+i) = 2(n−2)(d−i) with maximal slope
//! (exact-solver-verified at small size), plus the shapes the other
//! models legitimately take (nodel's halved slope through free
//! recomputation; base collapsing to 0; compcost's ε-weighted curve).

use crate::report::Table;
use rbp_core::{engine, CostModel, Instance, ModelKind};
use rbp_gadgets::tradeoff;
use rbp_solvers::api::ExactSolver;
use rbp_solvers::sweep_r;
use std::path::Path;

/// Regenerates the Figure-4 tradeoff curves.
pub fn run(out: &Path) {
    let (d, chain) = (6usize, 30usize);
    let t = tradeoff::build(d, chain);
    println!(
        "\ntradeoff DAG: d = {d}, chain = {chain} ({} nodes); R ∈ [{}, {}]",
        t.dag.n(),
        t.min_r(),
        t.free_r()
    );

    let mut table = Table::new(
        "Fig. 4 — opt(R) staircase per model (strategy-emitter costs, scaled keys)",
        &[
            "R",
            "oneshot",
            "oneshot formula",
            "nodel",
            "compcost",
            "base",
        ],
    );
    for r in t.min_r()..=t.free_r() {
        let mut cells = vec![r.to_string()];
        let scaled = |kind: ModelKind| -> String {
            let model = CostModel::of_kind(kind);
            let inst = Instance::new(t.dag.clone(), r, model);
            let trace = t.strategy(&inst).expect("strategy emits");
            let rep = engine::simulate(&inst, &trace).expect("valid");
            rep.cost.scaled(model.epsilon()).to_string()
        };
        cells.push(scaled(ModelKind::Oneshot));
        cells.push(t.expected_oneshot_cost(r).to_string());
        cells.push(scaled(ModelKind::NoDel));
        cells.push(scaled(ModelKind::CompCost));
        cells.push(scaled(ModelKind::Base));
        table.row_strings(cells);
    }
    table.print();
    table.write_csv(out, "fig4").expect("write csv");

    // exact-solver cross-check at small size: the staircase is optimal
    let small = tradeoff::build(2, 4);
    let inst = Instance::new(small.dag.clone(), small.min_r(), CostModel::oneshot());
    // unseeded: the sweep itself fans points over the pool, and the
    // seeded solver's portfolio escalation would nest a second fan-out
    let points = sweep_r(
        &inst,
        small.min_r()..=small.free_r(),
        &ExactSolver::new().unseeded(),
    );
    let mut check = Table::new(
        "Fig. 4 cross-check — exact optimum vs closed form (d=2, n=4)",
        &["R", "exact", "formula", "match", "states", "ms"],
    );
    let mut all_match = true;
    for p in &points {
        let exact = p.cost().expect("feasible").transfers;
        let formula = small.expected_oneshot_cost(p.r);
        all_match &= exact == formula;
        let states = p.states_expanded().unwrap_or(0);
        let ms = format!("{:.2}", p.wall.as_secs_f64() * 1e3);
        check.row(&[&p.r, &exact, &formula, &(exact == formula), &states, &ms]);
    }
    check.print();
    check.write_csv(out, "fig4_check").expect("write csv");
    assert!(all_match, "staircase formula must match the exact solver");
    println!("  (paper Fig. 4: uniform maximal staircase 2n per pebble from (2Δ−2)n down to 0;");
    println!("   recomputation models legitimately flatten — Section 4/App. A.1 discussion)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_runs() {
        let dir = std::env::temp_dir().join("rbp_fig4_test");
        super::run(&dir);
        assert!(dir.join("fig4.csv").exists());
        assert!(dir.join("fig4_check.csv").exists());
    }
}

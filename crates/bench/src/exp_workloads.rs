//! The HPC motivation (Section 1): I/O costs of real computation DAGs
//! under varying cache sizes, with Hong–Kung reference shapes where the
//! literature has them.

use crate::report::Table;
use rbp_core::{CostModel, Instance};
use rbp_solvers::registry;
use rbp_workloads::{fft, matmul, stencil, tree};
use std::path::Path;

/// Regenerates the workloads experiment.
pub fn run(out: &Path) {
    let mm = matmul::build(4);
    let f = fft::build(4);
    let st = stencil::build(8, 6, 1);
    let tr = tree::build(16, 2);

    let mut t = Table::new(
        "Workloads — best-greedy I/O cost vs cache size (oneshot)",
        &[
            "R",
            "matmul(4) cost",
            "HK n³/√R",
            "fft(16) cost",
            "HK nlogn/logR",
            "stencil(8x6)",
            "tree(16)",
        ],
    );
    for r in [3usize, 4, 6, 8, 12, 16, 24, 32] {
        let cost = |dag: &rbp_graph::Dag| -> String {
            let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
            match registry::solve("portfolio", &inst) {
                Ok(sol) => sol.cost.transfers.to_string(),
                Err(_) => "-".into(),
            }
        };
        t.row_strings(vec![
            r.to_string(),
            cost(&mm.dag),
            format!("{:.0}", matmul::hong_kung_bound(4, r)),
            cost(&f.dag),
            format!("{:.0}", fft::hong_kung_bound(16, r)),
            cost(&st.dag),
            cost(&tr.dag),
        ]);
    }
    t.print();
    t.write_csv(out, "workloads").expect("write csv");
    println!("  (shapes: matmul and FFT costs fall steeply with R and hit 0 once the working");
    println!("   set fits; trees are cheap at tiny R — the time-memory tradeoff of Section 1)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn workloads_runs() {
        let dir = std::env::temp_dir().join("rbp_workloads_test");
        super::run(&dir);
        assert!(dir.join("workloads.csv").exists());
    }
}

//! Table 1: the per-operation costs of the four models, measured by
//! probing the live engine rather than read off the configuration — each
//! cell is the cost delta the engine actually charges (or the rejection
//! it raises).

use crate::report::Table;
use rbp_core::{CostModel, Instance, ModelKind, Move, State};
use rbp_graph::DagBuilder;
use std::path::Path;

/// One engine probe: build the minimal state in which the operation is
/// legal, apply it, report the charged cost (or the refusal).
fn probe(kind: ModelKind, op: &str) -> String {
    let model = CostModel::of_kind(kind);
    // a single-edge DAG suffices for all four probes
    let mut b = DagBuilder::new(2);
    b.add_edge(0, 1);
    let inst = Instance::new(b.build().unwrap(), 2, model);
    let v = rbp_graph::NodeId::new(0);
    let eps = model.epsilon();
    let mut s = State::initial(&inst);
    let outcome = match op {
        "blue->red" => {
            s.apply(Move::Compute(v), &inst).unwrap();
            s.apply(Move::Store(v), &inst).unwrap();
            s.apply(Move::Load(v), &inst)
        }
        "red->blue" => {
            s.apply(Move::Compute(v), &inst).unwrap();
            s.apply(Move::Store(v), &inst)
        }
        "compute" => s.apply(Move::Compute(v), &inst),
        "recompute" => {
            s.apply(Move::Compute(v), &inst).unwrap();
            if model.allows_delete() {
                s.apply(Move::Delete(v), &inst).unwrap();
            } else {
                s.apply(Move::Store(v), &inst).unwrap();
            }
            s.apply(Move::Compute(v), &inst)
        }
        "delete" => {
            s.apply(Move::Compute(v), &inst).unwrap();
            s.apply(Move::Delete(v), &inst)
        }
        _ => unreachable!(),
    };
    match outcome {
        Ok(cost) => cost.total(eps).to_string(),
        Err(_) => "forbidden".to_string(),
    }
}

/// Regenerates Table 1.
pub fn run(out: &Path) {
    let mut t = Table::new(
        "Table 1 — operation costs per model (engine probes)",
        &[
            "model",
            "blue->red",
            "red->blue",
            "compute",
            "recompute",
            "delete",
        ],
    );
    for kind in ModelKind::ALL {
        t.row_strings(vec![
            kind.to_string(),
            probe(kind, "blue->red"),
            probe(kind, "red->blue"),
            probe(kind, "compute"),
            probe(kind, "recompute"),
            probe(kind, "delete"),
        ]);
    }
    t.print();
    t.write_csv(out, "table1").expect("write csv");
    println!("  (paper: transfers cost 1 everywhere; compute 0/once/0/ε; delete forbidden only in nodel)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_match_table1() {
        assert_eq!(probe(ModelKind::Base, "compute"), "0");
        assert_eq!(probe(ModelKind::Base, "recompute"), "0");
        assert_eq!(probe(ModelKind::Oneshot, "recompute"), "forbidden");
        assert_eq!(probe(ModelKind::NoDel, "delete"), "forbidden");
        assert_eq!(probe(ModelKind::NoDel, "recompute"), "0");
        assert_eq!(probe(ModelKind::CompCost, "compute"), "1/100");
        for kind in ModelKind::ALL {
            assert_eq!(probe(kind, "blue->red"), "1");
            assert_eq!(probe(kind, "red->blue"), "1");
        }
    }
}

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments all            # everything, in paper order
//! experiments fig4 fig8      # selected artifacts
//! ```
//!
//! Output goes to stdout (aligned tables) and `results/*.csv`.

use rbp_bench::{report, run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = report::results_dir();
    println!("writing CSVs to {}", out.display());

    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let t0 = std::time::Instant::now();
    for id in &ids {
        run_experiment(id, &out);
    }
    println!(
        "\ndone: {} experiment(s) in {:.1}s",
        ids.len(),
        t0.elapsed().as_secs_f64()
    );
}

//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. CD ladder vs pyramid (the paper's own gadget-design argument);
//! 2. greedy eviction policies on realistic workloads;
//! 3. visit-order search strategies (exhaustive B&B vs Held–Karp DP) on
//!    the Theorem-2 reduction: same optimum, very different effort.

use crate::report::Table;
use rbp_core::{CostModel, Instance};
use rbp_graph::Graph;
use rbp_reductions::reduction_hampath;
use rbp_solvers::api::{GreedySolver, Solver};
use rbp_solvers::{registry, EvictionPolicy, GreedyConfig, SelectionRule};
use rbp_workloads::{fft, matmul, stencil};
use std::path::Path;
use std::time::Instant;

/// Runs all ablations.
pub fn run(out: &Path) {
    // --- eviction-policy ablation ---
    let mut t = Table::new(
        "Ablation — eviction policies across workloads (oneshot, most-red rule)",
        &["workload", "R", "min-uses", "lru", "fifo", "random(7)"],
    );
    let mm = matmul::build(4);
    let f = fft::build(4);
    let st = stencil::build(8, 6, 1);
    for (name, dag, r) in [
        ("matmul(4)", &mm.dag, 8usize),
        ("fft(16)", &f.dag, 8),
        ("stencil(8x6)", &st.dag, 6),
    ] {
        let mut cells = vec![name.to_string(), r.to_string()];
        for eviction in [
            EvictionPolicy::MinUses,
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
            EvictionPolicy::Random(7),
        ] {
            let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
            let rep = GreedySolver::with_config(GreedyConfig {
                rule: SelectionRule::MostRedInputs,
                eviction,
            })
            .solve_default(&inst)
            .expect("feasible");
            cells.push(rep.cost.transfers.to_string());
        }
        t.row_strings(cells);
    }
    t.print();
    t.write_csv(out, "ablation_eviction").expect("write csv");

    // --- selection-rule ablation ---
    let mut t2 = Table::new(
        "Ablation — selection rules across workloads (min-uses eviction)",
        &["workload", "R", "most-red", "fewest-blue", "red-ratio"],
    );
    for (name, dag, r) in [
        ("matmul(4)", &mm.dag, 8usize),
        ("fft(16)", &f.dag, 8),
        ("stencil(8x6)", &st.dag, 6),
    ] {
        let mut cells = vec![name.to_string(), r.to_string()];
        for rule in SelectionRule::ALL {
            let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
            let rep = GreedySolver::with_config(GreedyConfig {
                rule,
                eviction: EvictionPolicy::MinUses,
            })
            .solve_default(&inst)
            .expect("feasible");
            cells.push(rep.cost.transfers.to_string());
        }
        t2.row_strings(cells);
    }
    t2.print();
    t2.write_csv(out, "ablation_selection").expect("write csv");

    // --- search-strategy ablation on the Theorem-2 reduction ---
    let mut t3 = Table::new(
        "Ablation — visit-order search strategies (HamPath reduction, oneshot)",
        &[
            "N",
            "exhaustive cost",
            "exhaustive ms",
            "held-karp cost",
            "held-karp ms",
        ],
    );
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for n in [5usize, 6, 7] {
        let g = Graph::gnp(n, 0.5, &mut rng);
        let red = reduction_hampath::encode(g);
        let model = CostModel::oneshot();
        let t0 = Instant::now();
        let sol = red.solve(model).expect("solvable");
        let exh_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let (dp_cost, _) = red.solve_dp(model);
        let dp_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(sol.scaled, dp_cost, "search strategies disagree");
        t3.row_strings(vec![
            n.to_string(),
            sol.scaled.to_string(),
            format!("{exh_ms:.2}"),
            dp_cost.to_string(),
            format!("{dp_ms:.3}"),
        ]);
    }
    t3.print();
    t3.write_csv(out, "ablation_search").expect("write csv");
    println!("  (the DP scales to N ≈ 20 where exhaustive search stops at ~9)");

    // --- beam-width ablation on the Theorem-4 grid: can width buy the
    //     escape a fixed greedy rule cannot make? ---
    let mut t4 = Table::new(
        "Ablation — beam width vs the Theorem-4 trap (grid ell=3, k'=16, oneshot)",
        &["solver", "cost", "vs diagonal-opt"],
    );
    let g = rbp_gadgets::grid::build(rbp_gadgets::grid::GridConfig {
        ell: 3,
        k_prime: 16,
        mis: 2,
    });
    let inst = g.instance(CostModel::oneshot());
    let opt_trace = g.grouped.emit(&inst, &g.optimal_order()).expect("valid");
    let opt = rbp_core::simulate(&inst, &opt_trace)
        .expect("valid")
        .cost
        .transfers;
    let greedy = GreedySolver::with_config(GreedyConfig {
        rule: SelectionRule::MostRedInputs,
        eviction: EvictionPolicy::MinUses,
    })
    .solve_default(&inst)
    .expect("feasible");
    t4.row_strings(vec![
        "greedy (most-red)".into(),
        greedy.cost.transfers.to_string(),
        format!("{:.2}x", greedy.cost.transfers as f64 / opt.max(1) as f64),
    ]);
    for width in [1usize, 4, 16, 64] {
        let rep = registry::solve(&format!("beam:{width}"), &inst).expect("feasible");
        t4.row_strings(vec![
            format!("beam w={width}"),
            rep.cost.transfers.to_string(),
            format!("{:.2}x", rep.cost.transfers as f64 / opt.max(1) as f64),
        ]);
    }
    t4.row_strings(vec![
        "diagonal order".into(),
        opt.to_string(),
        "1.00x".into(),
    ]);
    t4.print();
    t4.write_csv(out, "ablation_beam").expect("write csv");
    println!("  (width buys global context a fixed rule lacks: already w=4 escapes the");
    println!("   trap, and on small grids even beats the asymptotically-optimal diagonal");
    println!("   order by chaining targets across passes. The Theorem-4 bound binds any");
    println!("   strategy that scores nodes by current pebbles only — Section 8)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn ablation_runs() {
        let dir = std::env::temp_dir().join("rbp_ablation_test");
        super::run(&dir);
        assert!(dir.join("ablation_eviction.csv").exists());
        assert!(dir.join("ablation_search.csv").exists());
    }
}

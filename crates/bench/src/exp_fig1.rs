//! Figure 1 (and Appendix B): the constant-degree (CD) ladder, and the
//! design claim behind it — removing one red pebble makes the ladder's
//! cost grow linearly in its height h, whereas the classical pyramid's
//! penalty stays at 2. Both measured with the exact solver.

use crate::report::Table;
use rbp_core::{CostModel, Instance};
use rbp_gadgets::{cd, pyramid};
use rbp_solvers::registry;
use std::path::Path;

/// Regenerates the Figure-1 gadget comparison.
pub fn run(out: &Path) {
    let mut t = Table::new(
        "Fig. 1 — CD ladder vs pyramid: cost cliff when one red pebble is removed",
        &[
            "h",
            "ladder full-R",
            "ladder R-1",
            "ladder cliff",
            "pyramid full-R",
            "pyramid R-1",
            "pyramid cliff",
        ],
    );
    for h in 3..=6usize {
        let ladder = cd::build(2, h);
        let lf = registry::solve(
            "exact",
            &Instance::new(
                ladder.dag.clone(),
                ladder.free_budget(),
                CostModel::oneshot(),
            ),
        )
        .expect("feasible")
        .cost
        .transfers;
        let ls = registry::solve(
            "exact",
            &Instance::new(
                ladder.dag.clone(),
                ladder.free_budget() - 1,
                CostModel::oneshot(),
            ),
        )
        .expect("feasible")
        .cost
        .transfers;

        let p = pyramid::build(h);
        let pf = registry::solve(
            "exact",
            &Instance::new(p.dag.clone(), h + 1, CostModel::oneshot()),
        )
        .expect("feasible")
        .cost
        .transfers;
        let ps = registry::solve(
            "exact",
            &Instance::new(p.dag.clone(), h, CostModel::oneshot()),
        )
        .expect("feasible")
        .cost
        .transfers;

        t.row(&[&h, &lf, &ls, &(ls - lf), &pf, &ps, &(ps - pf)]);
    }
    t.print();
    t.write_csv(out, "fig1").expect("write csv");
    println!("  (paper: ladder cliff grows ~2h — a single missing pebble is catastrophic;");
    println!("   pyramid cliff stays at 2, which is why the paper introduces the CD gadget)");
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_runs() {
        let dir = std::env::temp_dir().join("rbp_fig1_test");
        super::run(&dir);
        assert!(dir.join("fig1.csv").exists());
    }
}

//! Solver-kernel scaling: exact Dijkstra/A* on growing DAGs, greedy on
//! large workloads.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbp_core::{CostModel, Instance};
use rbp_graph::generate;
use rbp_solvers::api::{ExactSolver, Solver};
use rbp_solvers::{registry, ExactConfig};

fn bench_exact_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_solver");
    group.sample_size(10);
    for n in [8usize, 10, 12] {
        let mut rng = StdRng::seed_from_u64(1);
        let dag = generate::gnp_dag(n, 0.3, 2, &mut rng);
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, CostModel::oneshot());
        let astar = registry::solver("exact").unwrap();
        group.bench_with_input(BenchmarkId::new("astar_oneshot", n), &inst, |b, inst| {
            b.iter(|| black_box(astar.solve_default(inst).unwrap().cost))
        });
        let dijkstra = ExactSolver::with_config(ExactConfig {
            astar: false,
            ..ExactConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("dijkstra_oneshot", n), &inst, |b, inst| {
            b.iter(|| black_box(dijkstra.solve_default(inst).unwrap().cost))
        });
    }
    group.finish();
}

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_solver");
    for n in [100usize, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(2);
        let dag = generate::layered(n / 20, 20, 3, &mut rng);
        let inst = Instance::new(dag, 8, CostModel::oneshot());
        let greedy = registry::solver("greedy").unwrap();
        group.bench_with_input(BenchmarkId::new("layered", n), &inst, |b, inst| {
            b.iter(|| black_box(greedy.solve_default(inst).unwrap().cost))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_scaling, bench_greedy_scaling);
criterion_main!(benches);

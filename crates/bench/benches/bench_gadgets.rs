//! Figure-1/2 bench: gadget construction and exact solving of the CD
//! ladder, pyramid, and H2C gadget.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbp_core::{CostModel, Instance};
use rbp_gadgets::{cd, h2c, pyramid};
use rbp_solvers::registry;

fn bench_gadget_builds(c: &mut Criterion) {
    c.bench_function("fig1_build_cd_ladder_g8_h50", |b| {
        b.iter(|| black_box(cd::build(8, 50).dag.n()))
    });
    c.bench_function("fig1_build_pyramid_h30", |b| {
        b.iter(|| black_box(pyramid::build(30).dag.n()))
    });
}

fn bench_gadget_exact(c: &mut Criterion) {
    let exact = registry::solver("exact").unwrap();
    let mut group = c.benchmark_group("gadget_exact");
    group.sample_size(10);
    let ladder = cd::build(2, 4);
    group.bench_function("fig1_cd_starved", |b| {
        let inst = Instance::new(
            ladder.dag.clone(),
            ladder.free_budget() - 1,
            CostModel::oneshot(),
        );
        b.iter(|| black_box(exact.solve_default(&inst).unwrap().cost.transfers))
    });
    let p = pyramid::build(4);
    group.bench_function("fig1_pyramid_starved", |b| {
        let inst = Instance::new(p.dag.clone(), 4, CostModel::oneshot());
        b.iter(|| black_box(exact.solve_default(&inst).unwrap().cost.transfers))
    });
    let dag = rbp_graph::DagBuilder::new(1).build().unwrap();
    let h = h2c::attach(&dag, h2c::H2cConfig::standard(4));
    group.bench_function("fig2_h2c_exact", |b| {
        let inst = Instance::new(h.dag.clone(), 4, CostModel::oneshot());
        b.iter(|| black_box(exact.solve_default(&inst).unwrap().cost.transfers))
    });
    group.finish();
}

criterion_group!(benches, bench_gadget_builds, bench_gadget_exact);
criterion_main!(benches);

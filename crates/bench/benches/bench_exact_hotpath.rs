//! Exact-solver hot-path benchmark: the same {chain, pyramid, grid,
//! layered, matmul, fft} × {base, oneshot, nodel} matrix the
//! `perf-snapshot` experiment records to `BENCH_exact.json`, run under
//! criterion for interactive before/after comparisons.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_bench::perf_snapshot;
use rbp_solvers::registry;

fn bench_exact_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_hotpath");
    group.sample_size(10);
    let exact = registry::solver("exact").unwrap();
    for case in perf_snapshot::cells() {
        group.bench_with_input(
            BenchmarkId::new(case.workload, case.model),
            &case.instance,
            |b, inst| b.iter(|| black_box(exact.solve_default(inst).unwrap().cost)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_hotpath);
criterion_main!(benches);

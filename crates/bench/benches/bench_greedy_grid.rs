//! Figure-8 / Theorem-4 bench: the greedy solver walking the grid trap
//! and the diagonal-order scheduler, at growing sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_core::{engine, CostModel};
use rbp_gadgets::grid::{self, GridConfig};
use rbp_solvers::api::{GreedySolver, Solver};
use rbp_solvers::{EvictionPolicy, GreedyConfig, SelectionRule};

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_grid");
    group.sample_size(10);
    for (ell, kp) in [(3usize, 16usize), (4, 16), (5, 32)] {
        let g = grid::build(GridConfig {
            ell,
            k_prime: kp,
            mis: 2,
        });
        let id = format!("ell{ell}_kp{kp}");
        group.bench_with_input(BenchmarkId::new("greedy", &id), &g, |b, g| {
            let inst = g.instance(CostModel::oneshot());
            b.iter(|| {
                let rep = GreedySolver::with_config(GreedyConfig {
                    rule: SelectionRule::MostRedInputs,
                    eviction: EvictionPolicy::MinUses,
                })
                .solve_default(&inst)
                .unwrap();
                black_box(rep.cost.transfers)
            })
        });
        group.bench_with_input(BenchmarkId::new("diagonal_emit", &id), &g, |b, g| {
            let inst = g.instance(CostModel::oneshot());
            let order = g.optimal_order();
            b.iter(|| {
                let trace = g.grouped.emit(&inst, &order).unwrap();
                black_box(engine::simulate(&inst, &trace).unwrap().cost.transfers)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);

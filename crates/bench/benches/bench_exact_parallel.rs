//! Parallel exact-solver benchmark: the snapshot's heavier cells (the
//! wide-frontier base-model searches plus the larger incumbent-tractable
//! instances) at 1, 2, and 4 worker threads, for interactive scaling
//! runs against `perf-snapshot`'s recorded trajectory.
//!
//! `threads = 1` is the incumbent-seeded sequential path; higher counts
//! exercise the hash-sharded HDA* search end to end (routing, batched
//! channels, quiescence detection).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_bench::perf_snapshot;
use rbp_solvers::registry;

fn bench_exact_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_parallel");
    group.sample_size(10);
    let cases: Vec<_> = perf_snapshot::all_cells()
        .into_iter()
        .filter(|case| {
            // the cells where parallelism has something to chew on
            matches!(
                (case.workload, case.model),
                ("grid", "base") | ("pyramid", "base") | ("pyramid5", "base") | ("grid5", "nodel")
            )
        })
        .collect();
    for case in &cases {
        for threads in [1usize, 2, 4] {
            let solver = registry::solver(&format!("exact-parallel:{threads}")).unwrap();
            group.bench_with_input(
                BenchmarkId::new(
                    format!("{}_{}", case.workload, case.model),
                    format!("{threads}t"),
                ),
                &case.instance,
                |b, inst| b.iter(|| black_box(solver.solve_default(inst).unwrap().cost)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exact_parallel);
criterion_main!(benches);

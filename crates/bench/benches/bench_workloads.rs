//! Workloads bench: greedy scheduling of matmul / FFT / stencil DAGs —
//! the practical use of the library as an I/O-cost estimator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_core::{CostModel, Instance};
use rbp_solvers::registry;
use rbp_workloads::{fft, matmul, stencil};

fn bench_workloads(c: &mut Criterion) {
    let greedy = registry::solver("greedy").unwrap();
    let mut group = c.benchmark_group("workloads_greedy");
    for n in [4usize, 6, 8] {
        let mm = matmul::build(n);
        group.bench_with_input(BenchmarkId::new("matmul", n), &mm.dag, |b, dag| {
            let inst = Instance::new(dag.clone(), 2 * n, CostModel::oneshot());
            b.iter(|| black_box(greedy.solve_default(&inst).unwrap().cost.transfers))
        });
    }
    for logn in [4u32, 6, 8] {
        let f = fft::build(logn);
        group.bench_with_input(BenchmarkId::new("fft", 1u64 << logn), &f.dag, |b, dag| {
            let inst = Instance::new(dag.clone(), 16, CostModel::oneshot());
            b.iter(|| black_box(greedy.solve_default(&inst).unwrap().cost.transfers))
        });
    }
    let st = stencil::build(32, 16, 1);
    group.bench_function("stencil_32x16", |b| {
        let inst = Instance::new(st.dag.clone(), 12, CostModel::oneshot());
        b.iter(|| black_box(greedy.solve_default(&inst).unwrap().cost.transfers))
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);

//! Figures-6/7 / Theorem-3 bench: encoding Vertex Cover instances into
//! pebbling, solving the visit-order optimum, and decoding covers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbp_core::CostModel;
use rbp_graph::Graph;
use rbp_reductions::{reduction_vc, vertex_cover};
use rbp_solvers::best_order;

fn bench_encode(c: &mut Criterion) {
    let g = Graph::cycle(6);
    c.bench_function("fig67_encode_cycle6_k42", |b| {
        b.iter(|| black_box(reduction_vc::encode(g.clone(), 42).dag.n()))
    });
}

fn bench_solve_and_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig67_solve");
    group.sample_size(10);
    for (name, g) in [("path4", Graph::path(4)), ("cycle4", Graph::cycle(4))] {
        let n = g.n();
        let red = reduction_vc::encode(g, n * n + n);
        group.bench_function(format!("best_order_{name}"), |b| {
            let inst = red.instance(CostModel::oneshot());
            b.iter(|| {
                let best = best_order(&red.grouped, &inst).unwrap();
                black_box(red.decode(&best.order).len())
            })
        });
    }
    group.finish();

    let g = Graph::cycle(8);
    c.bench_function("fig67_exact_vc_ground_truth_cycle8", |b| {
        b.iter(|| black_box(vertex_cover::min_vertex_cover(&g).len()))
    });
}

criterion_group!(benches, bench_encode, bench_solve_and_decode);
criterion_main!(benches);

//! Figure-4 bench: emitting and validating the tradeoff staircase
//! strategy across the full budget range, plus the exact-solver check at
//! small size.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbp_core::{engine, CostModel, Instance};
use rbp_gadgets::tradeoff;
use rbp_solvers::registry;

fn bench_staircase_emit(c: &mut Criterion) {
    let t = tradeoff::build(6, 100);
    c.bench_function("fig4_strategy_sweep_d6_n100", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for r in t.min_r()..=t.free_r() {
                let inst = Instance::new(t.dag.clone(), r, CostModel::oneshot());
                let trace = t.strategy(&inst).unwrap();
                total += engine::simulate(&inst, &trace).unwrap().cost.transfers;
            }
            black_box(total)
        })
    });
}

fn bench_staircase_exact(c: &mut Criterion) {
    let exact = registry::solver("exact").unwrap();
    let t = tradeoff::build(2, 3);
    let mut group = c.benchmark_group("fig4_exact");
    group.sample_size(10);
    group.bench_function("d2_n3_full_range", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for r in t.min_r()..=t.free_r() {
                let inst = Instance::new(t.dag.clone(), r, CostModel::oneshot());
                total += exact.solve_default(&inst).unwrap().cost.transfers;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_staircase_emit, bench_staircase_exact);
criterion_main!(benches);

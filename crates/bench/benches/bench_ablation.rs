//! Ablation bench: eviction policies head-to-head on the same workload,
//! and visit-order search strategies on the Theorem-2 reduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbp_core::{CostModel, Instance};
use rbp_graph::Graph;
use rbp_reductions::reduction_hampath;
use rbp_solvers::api::{GreedySolver, Solver};
use rbp_solvers::{EvictionPolicy, GreedyConfig, SelectionRule};
use rbp_workloads::matmul;

fn bench_eviction_policies(c: &mut Criterion) {
    let mm = matmul::build(5);
    let inst = Instance::new(mm.dag.clone(), 10, CostModel::oneshot());
    let mut group = c.benchmark_group("ablation_eviction_matmul5");
    for eviction in [
        EvictionPolicy::MinUses,
        EvictionPolicy::Lru,
        EvictionPolicy::Fifo,
    ] {
        group.bench_function(format!("{eviction}"), |b| {
            b.iter(|| {
                let rep = GreedySolver::with_config(GreedyConfig {
                    rule: SelectionRule::MostRedInputs,
                    eviction,
                })
                .solve_default(&inst)
                .unwrap();
                black_box(rep.cost.transfers)
            })
        });
    }
    group.finish();
}

fn bench_search_strategies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(10);
    let g = Graph::gnp(7, 0.5, &mut rng);
    let red = reduction_hampath::encode(g);
    let mut group = c.benchmark_group("ablation_search_n7");
    group.sample_size(10);
    group.bench_function("exhaustive_bnb", |b| {
        b.iter(|| black_box(red.solve(CostModel::oneshot()).unwrap().scaled))
    });
    group.bench_function("held_karp", |b| {
        b.iter(|| black_box(red.solve_dp(CostModel::oneshot()).0))
    });
    group.finish();
}

criterion_group!(benches, bench_eviction_policies, bench_search_strategies);
criterion_main!(benches);

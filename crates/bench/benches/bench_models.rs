//! Table-1 companion bench: engine move throughput per model — the cost
//! of the innermost `State::apply` loop every solver sits on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rbp_core::{CostModel, Instance, ModelKind, Move, State};
use rbp_graph::generate;

fn bench_engine_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_apply");
    for kind in ModelKind::ALL {
        let dag = generate::chain(64);
        let inst = Instance::new(dag, 2, CostModel::of_kind(kind));
        group.bench_function(format!("{kind}_chain64"), |b| {
            b.iter(|| {
                let mut s = State::initial(&inst);
                let mut cost = rbp_core::Cost::ZERO;
                for i in 0..64 {
                    let v = rbp_graph::NodeId::new(i);
                    cost += s.apply(Move::Compute(v), &inst).unwrap();
                    if i >= 1 {
                        let p = rbp_graph::NodeId::new(i - 1);
                        cost += if inst.model().allows_delete() {
                            s.apply(Move::Delete(p), &inst).unwrap()
                        } else {
                            s.apply(Move::Store(p), &inst).unwrap()
                        };
                    }
                }
                black_box(cost)
            })
        });
    }
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let dag = generate::chain(256);
    let inst = Instance::new(dag, 2, CostModel::oneshot());
    let trace = rbp_core::bounds::canonical_pebbling(&inst).unwrap();
    c.bench_function("simulate_canonical_chain256", |b| {
        b.iter(|| black_box(rbp_core::simulate(&inst, &trace).unwrap().cost))
    });
}

criterion_group!(benches, bench_engine_apply, bench_simulate);
criterion_main!(benches);

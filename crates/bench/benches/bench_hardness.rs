//! Figure-5 / Theorem-2 bench: encoding Hamiltonian Path instances and
//! solving the reduction by exhaustive order search vs Held–Karp DP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbp_core::CostModel;
use rbp_graph::Graph;
use rbp_reductions::reduction_hampath;

fn bench_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let g = Graph::gnp(12, 0.4, &mut rng);
    c.bench_function("fig5_encode_n12", |b| {
        b.iter(|| black_box(reduction_hampath::encode(g.clone()).dag.n()))
    });
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_solve");
    group.sample_size(10);
    for n in [6usize, 8] {
        let mut rng = StdRng::seed_from_u64(4);
        let g = Graph::gnp(n, 0.5, &mut rng);
        let red = reduction_hampath::encode(g);
        group.bench_with_input(BenchmarkId::new("held_karp", n), &red, |b, red| {
            b.iter(|| black_box(red.solve_dp(CostModel::oneshot()).0))
        });
        if n <= 6 {
            group.bench_with_input(BenchmarkId::new("exhaustive", n), &red, |b, red| {
                b.iter(|| black_box(red.solve(CostModel::oneshot()).unwrap().scaled))
            });
        }
    }
    // the DP scales far beyond the exhaustive search
    let mut rng = StdRng::seed_from_u64(5);
    let g = Graph::gnp(14, 0.4, &mut rng);
    let red = reduction_hampath::encode(g);
    group.bench_function("held_karp_n14", |b| {
        b.iter(|| black_box(red.solve_dp(CostModel::oneshot()).0))
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_solve);
criterion_main!(benches);

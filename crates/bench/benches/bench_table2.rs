//! Table-2 companion bench: the measurements behind the summary table —
//! per-model exact solves on the random family and the grid ratio run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rbp_core::{CostModel, Instance, ModelKind};
use rbp_graph::generate;
use rbp_solvers::registry;

fn bench_per_model_exact(c: &mut Criterion) {
    let exact = registry::solver("exact").unwrap();
    let mut group = c.benchmark_group("table2_exact_per_model");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let dag = generate::layered(3, 3, 2, &mut rng);
    let r = dag.max_indegree() + 1;
    for kind in ModelKind::ALL {
        let inst = Instance::new(dag.clone(), r, CostModel::of_kind(kind));
        group.bench_function(format!("{kind}"), |b| {
            b.iter(|| black_box(exact.solve_default(&inst).unwrap().cost))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_model_exact);
criterion_main!(benches);

//! The HPC motivation (paper Section 1): how the I/O cost of dense
//! matrix multiplication falls as fast memory grows, and how the greedy
//! eviction policies compare against each other and against the
//! Hong–Kung Ω(n³/√R) reference shape.
//!
//! Run with: `cargo run --release --example matmul_io`

use red_blue_pebbling::prelude::*;
use red_blue_pebbling::workloads::matmul;

fn main() {
    let n = 4;
    let mm = matmul::build(n);
    println!(
        "matmul n={n}: DAG with {} nodes ({} inputs, {} outputs), Δ = {}",
        mm.dag.n(),
        mm.dag.sources().len(),
        mm.dag.sinks().len(),
        mm.dag.max_indegree()
    );
    println!();
    println!(
        "{:>4} | {:>9} | {:>9} | {:>9} | {:>9} | {:>12}",
        "R", "min-uses", "lru", "fifo", "portfolio", "HK n³/√R"
    );
    println!("{}", "-".repeat(68));

    for r in [3usize, 4, 6, 8, 12, 16, 24, 32] {
        let inst = Instance::new(mm.dag.clone(), r, CostModel::oneshot());
        let mut row = Vec::new();
        for eviction in [
            EvictionPolicy::MinUses,
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
        ] {
            let rep = GreedySolver::with_config(GreedyConfig {
                rule: SelectionRule::MostRedInputs,
                eviction,
            })
            .solve_default(&inst)
            .expect("feasible");
            row.push(rep.cost.transfers);
        }
        let best = registry::solve("portfolio", &inst).expect("feasible");
        println!(
            "{r:>4} | {:>9} | {:>9} | {:>9} | {:>9} | {:>12.1}",
            row[0],
            row[1],
            row[2],
            best.cost.transfers,
            matmul::hong_kung_bound(n, r)
        );
    }

    println!();
    println!("note: absolute numbers are schedule costs on the exact DAG;");
    println!("the Hong-Kung column is the asymptotic shape (no constant).");
}

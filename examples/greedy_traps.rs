//! Theorem 4 live: the grid construction that fools every natural greedy
//! heuristic (Figure 8). The node-level greedy solver walks straight into
//! the misguidance — columns right-to-left — paying the 2k′ commons toll
//! per group, while the diagonal schedule computes each diagonal's
//! commons once.
//!
//! Run with: `cargo run --release --example greedy_traps`

use red_blue_pebbling::gadgets::grid::{self, GridConfig};
use red_blue_pebbling::prelude::*;

fn main() {
    println!(
        "{:>3} {:>6} {:>8} | {:>8} {:>9} | {:>6}",
        "ℓ", "k'", "nodes", "greedy", "diagonal", "ratio"
    );
    println!("{}", "-".repeat(52));
    for (ell, k_prime) in [(3usize, 8usize), (3, 16), (3, 32), (4, 16), (5, 16)] {
        let g = grid::build(GridConfig {
            ell,
            k_prime,
            mis: 2,
        });
        let inst = g.instance(CostModel::oneshot());
        let rep = GreedySolver::with_config(GreedyConfig {
            rule: SelectionRule::MostRedInputs,
            eviction: EvictionPolicy::MinUses,
        })
        .solve_default(&inst)
        .expect("feasible");
        // verify the trap actually sprang
        let visits = g.decode_visits(&rep.computation_order());
        assert_eq!(visits, g.greedy_order(), "greedy escaped the misguidance");

        let opt_trace = g
            .grouped
            .emit(&inst, &g.optimal_order())
            .expect("diagonal order is valid");
        let opt = engine::simulate(&inst, &opt_trace).expect("valid trace");
        let ratio = rep.cost.transfers as f64 / opt.cost.transfers.max(1) as f64;
        println!(
            "{ell:>3} {k_prime:>6} {:>8} | {:>8} {:>9} | {ratio:>6.2}",
            g.dag.n(),
            rep.cost.transfers,
            opt.cost.transfers,
        );
    }
    println!();
    println!("the ratio grows with k' (per-diagonal commons), exactly the");
    println!("Θ̃(√n)-to-Θ̃(n) separation of Theorem 4.");
}

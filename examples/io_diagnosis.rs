//! I/O diagnosis: not just *how much* a schedule transfers, but *which
//! values thrash*. Uses the trace-analysis module on a matmul schedule to
//! locate the hot values and show the red working-set profile, then
//! compares greedy against beam search.
//!
//! Run with: `cargo run --release --example io_diagnosis`

use red_blue_pebbling::core::analysis;
use red_blue_pebbling::prelude::*;
use red_blue_pebbling::workloads::matmul;

fn main() {
    let n = 3;
    let mm = matmul::build(n);
    let r = 6;
    let inst = Instance::new(mm.dag.clone(), r, CostModel::oneshot());
    println!("matmul n={n}: {} nodes, cache R={r}", mm.dag.n());

    let greedy = registry::solve("greedy", &inst).expect("feasible");
    let beam = registry::solve("beam:32", &inst).expect("feasible");
    println!(
        "\ngreedy cost: {} transfers | beam(32) cost: {} transfers",
        greedy.cost.transfers, beam.cost.transfers
    );

    let a = analysis::analyze(&inst, &greedy.trace);
    println!(
        "\ngreedy trace: {} moves, peak red {}, mean red {:.2}, {} values round-tripped",
        a.len,
        a.peak_red,
        a.mean_red(),
        a.thrashed_values()
    );

    println!("\nhottest values (by transfers):");
    for (v, t) in a.hottest(8) {
        if t == 0 {
            break;
        }
        let label = inst.dag().label(v);
        let name = if label.is_empty() {
            format!("v{}", v.index())
        } else {
            label.to_string()
        };
        println!("  {name:<8} {t:>3} transfers");
    }

    // the working-set profile, coarsely binned
    println!("\nred working-set profile (trace quarters, mean occupancy):");
    let quarter = (a.red_curve.len() / 4).max(1);
    for (qi, chunk) in a.red_curve.chunks(quarter).enumerate().take(4) {
        let mean = chunk.iter().sum::<usize>() as f64 / chunk.len() as f64;
        let bar = "#".repeat((mean * 4.0).round() as usize);
        println!("  Q{} {mean:>5.2} {bar}", qi + 1);
    }

    // diagnosis in action: the hot values are the A-row / B-column
    // entries reused across output entries — exactly what a blocked
    // schedule (more cache) amortizes
    let roomy = Instance::new(mm.dag.clone(), 2 * r, CostModel::oneshot());
    let g2 = registry::solve("greedy", &roomy).expect("feasible");
    println!(
        "\ndoubling the cache: {} -> {} transfers",
        greedy.cost.transfers, g2.cost.transfers
    );
}

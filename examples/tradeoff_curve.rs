//! The time-memory tradeoff of Section 5 (Figures 3–4): the staircase
//! opt(d+2+i) = 2(d−i)·n with the maximal slope of 2n per red pebble,
//! printed as an ASCII rendition of Figure 4.
//!
//! Run with: `cargo run --release --example tradeoff_curve`

use red_blue_pebbling::gadgets::tradeoff;
use red_blue_pebbling::prelude::*;

/// The Section-5 strategy emitter wrapped as a [`Solver`]: anything that
/// produces a validated trace slots into the unified interface — here it
/// lets `sweep_r` measure the closed-form strategy like any registered
/// solver.
struct StrategySolver<'a>(&'a tradeoff::TradeoffChain);

impl Solver for StrategySolver<'_> {
    fn name(&self) -> &str {
        "tradeoff-strategy"
    }

    fn solve(&self, inst: &Instance, _ctx: &SolveCtx) -> Result<Solution, SolveError> {
        let trace = self.0.strategy(inst)?;
        let cost = engine::simulate(inst, &trace)
            .map_err(|e| SolveError::Pebbling(e.error))?
            .cost;
        Ok(Solution {
            trace,
            cost,
            quality: Quality::UpperBound {
                lower_bound: bounds::trivial_lower_bound(inst).scaled(inst.model().epsilon()),
            },
            stats: Stats::new(),
        })
    }
}

fn main() {
    let (d, chain) = (6, 40);
    let t = tradeoff::build(d, chain);
    println!(
        "tradeoff DAG: control groups of d={d}, chain n={chain} ({} nodes)",
        t.dag.n()
    );
    println!("budget range R ∈ [{}, {}]\n", t.min_r(), t.free_r());

    let inst = Instance::new(t.dag.clone(), t.min_r(), CostModel::oneshot());
    // measure the strategy's true cost at every R, in parallel
    let points = sweep_r(&inst, t.min_r()..=t.free_r(), &StrategySolver(&t));

    let max_cost = t.expected_oneshot_cost(t.min_r());
    println!(
        "{:>4} | {:>9} | {:>9} | figure-4 staircase",
        "R", "measured", "formula"
    );
    println!("{}", "-".repeat(64));
    for p in &points {
        let measured = p.cost().expect("strategy succeeds").transfers;
        let formula = t.expected_oneshot_cost(p.r);
        assert_eq!(measured, formula, "closed form must match the engine");
        let width = (measured * 40 / max_cost.max(1)) as usize;
        println!(
            "{:>4} | {:>9} | {:>9} | {}",
            p.r,
            measured,
            formula,
            "#".repeat(width)
        );
    }

    println!(
        "\neach extra red pebble saves exactly 2(n−2) = {} transfers —",
        2 * (chain - 2)
    );
    println!("the maximal possible slope (Section 5: opt(R−1) ≤ opt(R) + 2n).");
}

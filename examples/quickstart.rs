//! Quickstart: build a small computation DAG, pebble it under different
//! cache sizes and models, and inspect the optimal schedule.
//!
//! Run with: `cargo run --release --example quickstart`

use red_blue_pebbling::prelude::*;

fn main() {
    // A diamond-shaped computation:
    //      0   1        (inputs)
    //       \ / \
    //        2   3      (intermediates)
    //         \ /
    //          4        (output)
    let mut b = DagBuilder::new(0);
    let x = b.add_labeled_node("x");
    let y = b.add_labeled_node("y");
    let f = b.add_labeled_node("f(x,y)");
    let g = b.add_labeled_node("g(y)");
    let out = b.add_labeled_node("out");
    b.add_edge_ids(x, f);
    b.add_edge_ids(y, f);
    b.add_edge_ids(y, g);
    b.add_edge_ids(f, out);
    b.add_edge_ids(g, out);
    let dag = b.build().expect("acyclic");

    println!(
        "DAG: {} nodes, {} edges, Δ = {}",
        dag.n(),
        dag.num_edges(),
        dag.max_indegree()
    );
    println!("feasible from R = Δ+1 = {}\n", dag.max_indegree() + 1);

    // sweep the cache size under the oneshot model
    println!("{:>3} | optimal transfers | optimal schedule", "R");
    println!("----+-------------------+------------------");
    for r in 3..=5 {
        let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
        let opt = registry::solve("exact", &inst).expect("feasible");
        let moves: Vec<String> = opt.trace.moves().iter().map(|m| m.to_string()).collect();
        println!("{r:>3} | {:>17} | {}", opt.cost.transfers, moves.join(", "));
    }

    // the four models on the same instance
    println!("\nmodel comparison at R = 3:");
    for kind in ModelKind::ALL {
        let model = CostModel::of_kind(kind);
        let inst = Instance::new(dag.clone(), 3, model);
        let opt = registry::solve("exact", &inst).expect("feasible");
        println!(
            "  {kind:<8}  cost = {} (scaled key {})",
            opt.cost,
            opt.cost.scaled(model.epsilon())
        );
    }

    // every reported number is engine-validated
    let inst = Instance::new(dag.clone(), 3, CostModel::oneshot());
    let opt = registry::solve("exact", &inst).unwrap();
    let report = engine::simulate(&inst, &opt.trace).expect("trace must replay");
    println!(
        "\nvalidated: {} moves, peak {} red pebbles, cost {}",
        report.steps, report.peak_red, report.cost
    );
}

//! A tour of the four model variants (Table 1 / Table 2): the same DAG,
//! the same budget — four different games. Shows per-model optimal
//! costs, the cost brackets of Section 3/4, and why base is degenerate.
//!
//! Run with: `cargo run --release --example model_zoo`

use red_blue_pebbling::prelude::*;

fn main() {
    // a small two-join DAG under memory pressure
    let mut b = DagBuilder::new(0);
    let inputs: Vec<NodeId> = (0..4)
        .map(|i| b.add_labeled_node(format!("in{i}")))
        .collect();
    let j1 = b.add_labeled_node("j1");
    let j2 = b.add_labeled_node("j2");
    let out = b.add_labeled_node("out");
    for &i in &inputs[..3] {
        b.add_edge_ids(i, j1);
    }
    for &i in &inputs[1..] {
        b.add_edge_ids(i, j2);
    }
    b.add_edge_ids(j1, out);
    b.add_edge_ids(j2, out);
    let dag = b.build().unwrap();
    let r = dag.max_indegree() + 1;

    println!(
        "DAG: {} nodes, Δ = {}, R = {r}\n",
        dag.n(),
        dag.max_indegree()
    );
    println!(
        "{:<20} | {:>10} | {:>10} | {:>12} | {:>10}",
        "model", "lower bnd", "optimal", "upper bnd", "trace len"
    );
    println!("{}", "-".repeat(75));

    for kind in ModelKind::ALL {
        let model = CostModel::of_kind(kind);
        let inst = Instance::new(dag.clone(), r, model);
        let (lo, hi) = bounds::optimum_bracket(&inst);
        let opt = registry::solve("exact", &inst).expect("feasible");
        println!(
            "{:<20} | {:>10} | {:>10} | {:>12} | {:>10}",
            model.to_string(),
            lo.to_string(),
            opt.cost.total(model.epsilon()).to_string(),
            hi.to_string(),
            opt.trace.len()
        );
        // Lemma 1: optimal pebblings are short in the NP models
        if let Some(bound) = bounds::lemma1_length_bound(&inst) {
            assert!(
                (opt.trace.len() as u64) <= bound,
                "Lemma 1 length bound violated"
            );
        }
    }

    println!();
    println!("base reaches cost 0 through free delete+recompute cycles —");
    println!("the degeneracy that motivates oneshot, nodel and compcost");
    println!("(Section 4). In compcost the same recomputations cost ε each,");
    println!("which is exactly what puts the problem back into NP (Lemma 1).");

    // demonstrate Appendix C: convention equivalence
    let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
    let opt = registry::solve("exact", &inst).unwrap();
    let strict = red_blue_pebbling::core::transform::require_blue_sinks(&inst);
    let fixed = red_blue_pebbling::core::transform::bluify_sinks(&inst, &opt.trace);
    let strict_cost = engine::simulate(&strict, &fixed).unwrap().cost;
    println!(
        "\nAppendix C: any-pebble finish costs {}, blue-sink finish {} (≤ +#sinks)",
        opt.cost, strict_cost
    );
}

//! Pebbling-as-a-service: drive the batch-solve server both ways —
//! through the in-process API, and through the wire protocol that
//! `rbp-serve` speaks on stdin/stdout.
//!
//! Run with: `cargo run --release --example serve_batch`

use red_blue_pebbling::core::{io as core_io, CostModel, Instance};
use red_blue_pebbling::service::{
    serve_session, AcceptPolicy, Event, JobOptions, JobRequest, Server, ServerConfig,
};
use red_blue_pebbling::workloads::stencil;
use std::io::BufReader;

fn main() {
    let grid = stencil::build(4, 2, 1);
    let instance = Instance::new(grid.dag.clone(), 4, CostModel::base());

    // ---- in-process: submit a batch and watch the cache work --------
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServerConfig::default()
    });

    println!("== in-process batch ==");
    // a budget-limited solve first: caches an upper bound
    let events = server
        .submit_collect(JobRequest {
            id: "bounded".into(),
            spec: "exact".into(),
            instance: instance.clone(),
            options: JobOptions {
                max_expansions: Some(1),
                ..JobOptions::default()
            },
        })
        .unwrap();
    report(&events);

    // accept=bound is answered by the cached upper bound, no solve
    let events = server
        .submit_collect(JobRequest {
            id: "any-bound".into(),
            spec: "exact".into(),
            instance: instance.clone(),
            options: JobOptions {
                accept: AcceptPolicy::Bound,
                ..JobOptions::default()
            },
        })
        .unwrap();
    report(&events);

    // the default accept=optimal forces a real solve, which upgrades
    // the cached entry in place
    let events = server
        .submit_collect(JobRequest {
            id: "prove-it".into(),
            spec: "exact".into(),
            instance: instance.clone(),
            options: JobOptions::default(),
        })
        .unwrap();
    report(&events);

    // …and now every duplicate is a cache hit at full quality
    let events = server
        .submit_collect(JobRequest {
            id: "again".into(),
            spec: "exact".into(),
            instance: instance.clone(),
            options: JobOptions::default(),
        })
        .unwrap();
    report(&events);

    let stats = server.stats();
    println!(
        "server: submitted={} completed={} solves={} cache: entries={} hits={} upgrades={}\n",
        stats.submitted,
        stats.completed,
        stats.solves,
        stats.cache.entries,
        stats.cache.hits,
        stats.cache.upgrades,
    );

    // ---- over the wire: the same protocol rbp-serve speaks ----------
    // A scripted session: submit the (already cached) instance and ask
    // for stats. `serve_session` works over any byte streams; here a
    // String stands in for the socket.
    println!("== wire session ==");
    let mut script = String::new();
    script.push_str("submit wire-1 exact\n");
    script.push_str(&core_io::write_instance(&instance));
    script.push_str("stats\n");
    script.push_str("shutdown\n");

    let mut response = Vec::new();
    serve_session(BufReader::new(script.as_bytes()), &mut response, &server).unwrap();
    print!("{}", String::from_utf8(response).unwrap());

    server.shutdown();
}

fn report(events: &std::sync::mpsc::Receiver<Event>) {
    for ev in events.iter() {
        match ev {
            Event::Queued { id } => println!("[{id}] queued"),
            Event::CacheHit { id, spec } => println!("[{id}] cache hit (produced by '{spec}')"),
            Event::Progress {
                id,
                states_expanded,
                ..
            } => println!("[{id}] progress: {states_expanded} states"),
            Event::Done {
                id,
                spec,
                cached,
                solution,
            } => println!(
                "[{id}] done: spec={spec} cached={cached} quality={:?} cost={}",
                solution.quality, solution.cost
            ),
            Event::Failed { id, error } => println!("[{id}] failed: {error}"),
            Event::Cancelled { id } => println!("[{id}] cancelled"),
        }
    }
}

//! NP-hardness made executable (Theorem 2): compile a Hamiltonian Path
//! instance into a pebbling instance, solve the pebbling, and read the
//! Hamiltonian path back off the optimal schedule.
//!
//! Run with: `cargo run --release --example hardness_gadgets`

use red_blue_pebbling::prelude::*;
use red_blue_pebbling::reductions::{hampath, reduction_hampath};

fn main() {
    // the Petersen graph: 3-regular, vertex-transitive, and famously
    // without a Hamiltonian cycle — but it does have a Hamiltonian path
    let g = Graph::petersen();
    println!("input graph G: Petersen ({} nodes, {} edges)", g.n(), g.m());

    let red = reduction_hampath::encode(g);
    println!(
        "compiled pebbling instance: {} nodes, Δ = {}, R = {}",
        red.dag.n(),
        red.dag.max_indegree(),
        red.red_limit()
    );

    let model = CostModel::oneshot();
    let threshold = red.scaled_schedule_threshold(model);
    // Held–Karp over visit orders (N = 10: exhaustive would be 3.6M)
    let (cost, order) = red.solve_dp(model);
    println!("\noptimal pebbling cost: {cost} (threshold {threshold})");

    if cost <= threshold {
        let path = red.decode(&order).expect("threshold met => fully adjacent");
        println!("=> G HAS a Hamiltonian path: {path:?}");
        assert!(hampath::is_hamiltonian_path(&red.graph, &path));
        // cross-check with the classical DP
        assert!(hampath::has_hamiltonian_path(&red.graph));
    } else {
        println!("=> G has NO Hamiltonian path (cost exceeds threshold)");
        assert!(!hampath::has_hamiltonian_path(&red.graph));
    }

    // contrast: a star graph has no Hamiltonian path for n >= 4
    let star = Graph::star(6);
    let red2 = reduction_hampath::encode(star);
    let (cost2, _) = red2.solve_dp(model);
    let threshold2 = red2.scaled_schedule_threshold(model);
    println!(
        "\nstar(6): optimal pebbling cost {cost2} vs threshold {threshold2} => {}",
        if cost2 <= threshold2 {
            "Hamiltonian"
        } else {
            "not Hamiltonian"
        }
    );
    assert!(cost2 > threshold2);
}

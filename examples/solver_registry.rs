//! The unified solver API: spec strings, budgets, graceful degradation,
//! and a live progress observer.
//!
//! Every solver sits behind the `Solver` trait and a registry spec
//! (`"exact"`, `"exact-parallel:4"`, `"greedy:most-red-inputs/lru"`,
//! `"beam:256"`, `"portfolio"`), so selecting a solver is configuration,
//! not code. Budgets (deadline, expansion cap, cancellation flag) make
//! exact solves safe to run against hard instances: on expiry they
//! return their best incumbent as `Quality::UpperBound` instead of
//! failing.
//!
//! Run with: `cargo run --release --example solver_registry`

use red_blue_pebbling::prelude::*;
use red_blue_pebbling::workloads::stencil;
use std::time::Duration;

fn main() {
    // ---- spec-string dispatch over the heuristic ladder -------------
    let st = stencil::build(4, 2, 1);
    let inst = Instance::new(st.dag.clone(), 4, CostModel::oneshot());
    println!(
        "stencil 4x2: {} nodes at R = {}\n",
        st.dag.n(),
        inst.red_limit()
    );
    println!(
        "{:<32} {:>9} {:>10}  quality",
        "spec", "transfers", "expanded"
    );
    println!("{}", "-".repeat(68));
    for spec in [
        "greedy",
        "greedy:fewest-blue-inputs/lru",
        "beam:64",
        "portfolio",
        "exact",
    ] {
        let sol = registry::solve(spec, &inst).expect("feasible");
        println!(
            "{:<32} {:>9} {:>10}  {:?}",
            spec,
            sol.cost.transfers,
            sol.states_expanded().map_or("-".into(), |s| s.to_string()),
            sol.quality
        );
    }

    // ---- a budgeted exact solve with a progress observer ------------
    // the base model at tight R explodes the exact search; a deadline
    // turns that into "best incumbent found in 150 ms"
    let hard = Instance::new(stencil::build(5, 2, 1).dag.clone(), 4, CostModel::base());
    println!("\nbudgeted exact solve on stencil 5x2 / base (deadline 150 ms):");
    let observer = |p: &Progress| {
        println!(
            "  …{:>7} states expanded, {:>9} states/s, frontier {:>6}, incumbent {:?}",
            p.states_expanded, p.states_per_sec, p.frontier, p.incumbent
        );
    };
    let ctx = SolveCtx::with_progress(
        Budget::none().with_deadline(Duration::from_millis(150)),
        &observer,
    );
    let solver = registry::solver("exact").unwrap();
    let sol = solver.solve(&hard, &ctx).expect("degrades, never errors");
    match sol.quality {
        Quality::Optimal => println!("solved to optimality: {}", sol.cost),
        Quality::UpperBound { lower_bound } => println!(
            "deadline hit: incumbent cost {} (optimum is in [{}, {}] scaled)",
            sol.cost,
            lower_bound,
            sol.scaled_cost(&hard)
        ),
        Quality::Infeasible => unreachable!("instance is feasible"),
    }

    // the trace is valid either way — budgets never cost correctness
    let report = engine::simulate(&hard, &sol.trace).expect("validated trace");
    assert_eq!(report.cost, sol.cost);
    println!(
        "incumbent trace replays exactly ({} moves)",
        sol.trace.len()
    );
}

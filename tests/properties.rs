//! Property-based tests (proptest) over randomly generated DAGs: the
//! cross-crate invariants every component must satisfy together.

use proptest::prelude::*;
use red_blue_pebbling::core::{engine, CostModel, ModelKind};
use red_blue_pebbling::graph::{Dag, DagBuilder};
use red_blue_pebbling::prelude::*;
use red_blue_pebbling::solvers::SolveError;

/// Strategy: a random DAG given by node count and per-pair edge coin
/// flips over all forward pairs (i, j), i < j.
fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(|n| {
        let pair_count = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::weighted(0.4), pair_count).prop_map(
            move |coins| {
                let mut b = DagBuilder::new(n);
                let mut idx = 0;
                for i in 0..n {
                    for j in (i + 1)..n {
                        if coins[idx] {
                            b.add_edge(i, j);
                        }
                        idx += 1;
                    }
                }
                b.build().expect("forward edges are acyclic")
            },
        )
    })
}

fn model_strategy() -> impl Strategy<Value = CostModel> {
    prop_oneof![
        Just(CostModel::base()),
        Just(CostModel::oneshot()),
        Just(CostModel::nodel()),
        Just(CostModel::compcost()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The canonical pebbling is legal in every model and costs exactly
    /// 2m + n transfers.
    #[test]
    fn canonical_pebbling_always_validates(dag in arb_dag(10), model in model_strategy()) {
        let r = dag.max_indegree() + 1;
        let (n, m) = (dag.n() as u64, dag.num_edges() as u64);
        let inst = Instance::new(dag, r, model);
        let trace = bounds::canonical_pebbling(&inst).unwrap();
        let rep = engine::simulate(&inst, &trace).unwrap();
        prop_assert_eq!(rep.cost.transfers, 2 * m + n);
        prop_assert!(rep.peak_red <= r);
    }

    /// Greedy traces always validate, and their cost is bracketed by the
    /// trivial lower bound and the canonical upper bound.
    #[test]
    fn greedy_always_valid_and_bracketed(dag in arb_dag(12), model in model_strategy()) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let rep = registry::solve("greedy", &inst).unwrap();
        let sim = engine::simulate(&inst, &rep.trace).unwrap();
        prop_assert_eq!(sim.cost, rep.cost);
        let eps = model.epsilon();
        prop_assert!(bounds::trivial_lower_bound(&inst).scaled(eps) <= rep.cost.scaled(eps));
        prop_assert!(rep.cost.scaled(eps) <= bounds::universal_upper_bound(&inst).scaled(eps));
    }

    /// The pruned exact solver agrees with the unpruned reference on
    /// every model (tiny instances).
    #[test]
    fn pruned_exact_equals_reference(dag in arb_dag(6), model in model_strategy()) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let fast = registry::solve("exact", &inst).unwrap();
        let slow = registry::solve("reference", &inst).unwrap();
        let eps = model.epsilon();
        prop_assert_eq!(fast.cost.scaled(eps), slow.cost.scaled(eps));
    }

    /// opt(R) is monotone non-increasing in R, and in oneshot each extra
    /// pebble saves at most 2n (Section 5).
    #[test]
    fn opt_monotone_and_slope_bounded(dag in arb_dag(8)) {
        let n = dag.n() as u64;
        let rmin = dag.max_indegree() + 1;
        let inst = Instance::new(dag, rmin, CostModel::oneshot());
        let mut prev: Option<u64> = None;
        for r in rmin..=(rmin + 2) {
            let c = registry::solve("exact", &inst.with_red_limit(r)).unwrap().cost.transfers;
            if let Some(p) = prev {
                prop_assert!(c <= p, "opt increased with more pebbles");
                prop_assert!(p <= c + 2 * n, "slope exceeded 2n");
            }
            prev = Some(c);
        }
    }

    /// Malformed traces are rejected with the precise error: recompute in
    /// oneshot, delete in nodel, red-limit violations.
    #[test]
    fn failure_injection_rejected(dag in arb_dag(8)) {
        let r = dag.max_indegree() + 1;
        // recompute injection (oneshot): compute the first source twice
        let src = dag.sources()[0];
        let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
        let mut p = Pebbling::new();
        p.compute(src);
        p.delete(src);
        p.compute(src);
        let err = engine::simulate_prefix(&inst, &p).unwrap_err();
        prop_assert_eq!(err.step, 2);

        // delete injection (nodel)
        let inst2 = Instance::new(dag.clone(), r, CostModel::nodel());
        let mut p2 = Pebbling::new();
        p2.compute(src);
        p2.delete(src);
        prop_assert!(engine::simulate_prefix(&inst2, &p2).is_err());

        // red-limit violation: compute more nodes than R allows
        if dag.sources().len() > 1 {
            let inst3 = Instance::new(dag.clone(), 1, CostModel::base());
            let mut p3 = Pebbling::new();
            for v in dag.sources() {
                p3.compute(v);
            }
            prop_assert!(engine::simulate_prefix(&inst3, &p3).is_err());
        }
    }

    /// Infeasible budgets are reported as such by every solver.
    #[test]
    fn infeasibility_consistently_reported(dag in arb_dag(8)) {
        let delta = dag.max_indegree();
        prop_assume!(delta >= 1);
        let inst = Instance::new(dag, delta, CostModel::oneshot());
        prop_assert!(matches!(registry::solve("exact", &inst), Err(SolveError::Pebbling(_))));
        prop_assert!(matches!(registry::solve("greedy", &inst), Err(SolveError::Pebbling(_))));
        prop_assert!(bounds::canonical_pebbling(&inst).is_err());
    }

    /// Appendix C: requiring blue sinks changes the optimum by at most
    /// the sink count.
    #[test]
    fn appendix_c_blue_sink_gap_bounded(dag in arb_dag(7)) {
        let r = dag.max_indegree() + 1;
        let sinks = dag.sinks().len() as u128;
        let inst = Instance::new(dag, r, CostModel::oneshot());
        let plain = registry::solve("exact", &inst).unwrap();
        let strict = red_blue_pebbling::core::transform::require_blue_sinks(&inst);
        let strict_opt = registry::solve("exact", &strict).unwrap();
        let eps = inst.model().epsilon();
        prop_assert!(plain.cost.scaled(eps) <= strict_opt.cost.scaled(eps));
        prop_assert!(strict_opt.cost.scaled(eps) <= plain.cost.scaled(eps) + sinks * eps.den() as u128);
    }

    /// `Quality::Optimal` solutions are never worse than any heuristic
    /// solver's on the same instance, and every heuristic's reported
    /// `lower_bound` really bounds the optimum from below.
    #[test]
    fn optimal_quality_dominates_heuristics(dag in arb_dag(7), model in model_strategy()) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag, r, model);
        let eps = model.epsilon();
        let exact = registry::solve("exact", &inst).unwrap();
        prop_assert!(exact.is_optimal(), "unbudgeted exact must prove optimality");
        for spec in ["greedy", "greedy:fewest-blue-inputs/lru", "beam:4", "portfolio"] {
            let heur = registry::solve(spec, &inst).unwrap();
            prop_assert!(
                exact.cost.scaled(eps) <= heur.cost.scaled(eps),
                "heuristic {} beat a Quality::Optimal solution", spec
            );
            match heur.quality {
                Quality::Optimal => prop_assert_eq!(
                    heur.cost.scaled(eps), exact.cost.scaled(eps)
                ),
                Quality::UpperBound { lower_bound } => {
                    prop_assert!(lower_bound <= exact.cost.scaled(eps));
                }
                Quality::Infeasible => prop_assert!(false, "feasible instance"),
            }
        }
    }

    /// The super-source transform (Section 3) preserves optimal cost up
    /// to the paper's R+1 budget rule, within one initial compute.
    #[test]
    fn super_source_preserves_behavior(dag in arb_dag(6)) {
        let r = dag.max_indegree() + 1;
        let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
        let base_opt = registry::solve("exact", &inst).unwrap();
        let ss = red_blue_pebbling::core::transform::add_super_source(&dag);
        let aug = Instance::new(ss.dag, r + 1, CostModel::oneshot());
        let aug_opt = registry::solve("exact", &aug).unwrap();
        // parking one pebble on s0 leaves R for the original game; the
        // optimum can only improve or stay (never exceed base + 0)
        prop_assert!(aug_opt.cost.transfers <= base_opt.cost.transfers);
    }
}

/// Deterministic regression: all four models rank a fixed instance the
/// way Table 2's brackets say they must (base ≤ oneshot; nodel ≥ n−R).
#[test]
fn model_cost_ordering_on_fixed_instance() {
    let mut b = DagBuilder::new(6);
    b.add_edge(0, 2);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(2, 4);
    b.add_edge(3, 5);
    b.add_edge(4, 5);
    let dag = b.build().unwrap();
    let r = 3;
    let opt = |kind: ModelKind| {
        registry::solve(
            "exact",
            &Instance::new(dag.clone(), r, CostModel::of_kind(kind)),
        )
        .unwrap()
        .cost
    };
    let base = opt(ModelKind::Base);
    let oneshot = opt(ModelKind::Oneshot);
    let nodel = opt(ModelKind::NoDel);
    assert!(
        base.transfers <= oneshot.transfers,
        "base can only be cheaper"
    );
    assert!(nodel.transfers as usize >= dag.n() - r, "nodel lower bound");
}

//! Smoke test covering the facade's quickstart path end-to-end: the same
//! API the `quickstart.rs` example and the crate-level doctest exercise —
//! build a DAG through the prelude, solve it exactly, and replay the
//! schedule through the validating engine.

use red_blue_pebbling::prelude::*;

/// The crate-level quickstart: a 2×2 matmul DAG with a cache of 4,
/// solved exactly and engine-validated.
#[test]
fn quickstart_matmul_round_trip() {
    let mm = red_blue_pebbling::workloads::matmul::build(2);
    assert_eq!(mm.n, 2);
    // 4 entries of A, 4 of B, and per output entry two products plus one
    // accumulation: 8 + 4·3 = 20 nodes.
    assert_eq!(mm.dag.n(), 20);
    assert!(mm.dag.max_indegree() <= 2, "matmul is pebblable from R = 3");

    let inst = Instance::new(mm.dag.clone(), 4, CostModel::oneshot());
    let opt = registry::solve("exact", &inst).expect("R = 4 is feasible for matmul(2)");
    assert!(opt.is_optimal(), "exact solves carry Quality::Optimal");

    // The reported optimum must replay on the engine at exactly the
    // reported cost, within the red budget.
    let report = engine::simulate(&inst, &opt.trace).expect("optimal trace must validate");
    assert_eq!(report.cost, opt.cost);
    assert!(report.peak_red <= 4);

    // And it must sit inside the structural bracket from Section 3.
    let eps = inst.model().epsilon();
    assert!(bounds::trivial_lower_bound(&inst).scaled(eps) <= opt.cost.scaled(eps));
    assert!(opt.cost.scaled(eps) <= bounds::universal_upper_bound(&inst).scaled(eps));
}

/// The example's diamond DAG: sweeping R shrinks the optimum to zero
/// transfers once everything fits in fast memory.
#[test]
fn quickstart_diamond_sweep_is_monotone() {
    let mut b = DagBuilder::new(0);
    let x = b.add_labeled_node("x");
    let y = b.add_labeled_node("y");
    let f = b.add_labeled_node("f(x,y)");
    let g = b.add_labeled_node("g(y)");
    let out = b.add_labeled_node("out");
    b.add_edge_ids(x, f);
    b.add_edge_ids(y, f);
    b.add_edge_ids(y, g);
    b.add_edge_ids(f, out);
    b.add_edge_ids(g, out);
    let dag = b.build().expect("acyclic");

    let mut prev = u64::MAX;
    for r in 3..=5 {
        let inst = Instance::new(dag.clone(), r, CostModel::oneshot());
        let opt = registry::solve("exact", &inst).expect("feasible from R = 3");
        let report = engine::simulate(&inst, &opt.trace).expect("valid");
        assert_eq!(report.cost, opt.cost);
        assert!(opt.cost.transfers <= prev, "opt(R) must be non-increasing");
        prev = opt.cost.transfers;
    }
    // All five values fit at R = 5, so the game is I/O-free.
    assert_eq!(prev, 0);
}

/// Public-API smoke test: every spec string in the README's solver
/// registry grammar table parses and solves the quickstart diamond.
/// Documentation drift (a spec renamed in code but not in the README,
/// or vice versa) fails here, not in a user's shell.
#[test]
fn readme_registry_specs_parse_and_solve() {
    let readme = include_str!("../README.md");
    let section = readme
        .split("## Solver registry")
        .nth(1)
        .expect("README must keep a 'Solver registry' section");
    let section = section.split("\n## ").next().unwrap();
    let mut specs: Vec<&str> = Vec::new();
    for line in section.lines() {
        // table rows look like:  | `exact-parallel:4` | ... |
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let spec = rest.split('`').next().unwrap();
        specs.push(spec);
    }
    assert!(
        specs.len() >= 6,
        "README grammar table lists every family; found only {specs:?}"
    );

    // the quickstart diamond from the example above
    let mut b = DagBuilder::new(5);
    b.add_edge(0, 2);
    b.add_edge(1, 2);
    b.add_edge(1, 3);
    b.add_edge(2, 4);
    b.add_edge(3, 4);
    let inst = Instance::new(b.build().expect("acyclic"), 3, CostModel::oneshot());
    for spec in specs {
        let sol = registry::solve(spec, &inst)
            .unwrap_or_else(|e| panic!("README spec `{spec}` failed: {e}"));
        let report = engine::simulate(&inst, &sol.trace)
            .unwrap_or_else(|e| panic!("README spec `{spec}` produced an invalid trace: {e:?}"));
        assert_eq!(
            report.cost, sol.cost,
            "spec `{spec}` cost must be engine-exact"
        );
    }
}

/// Public-API smoke test for the "Multiprocessor pebbling" section:
/// replays the documented session verbatim and checks every claim the
/// prose makes — the `@mpp` grammar rows parse and solve, `p = 1`
/// matches the classic optimum, a second processor strictly helps on
/// the height-3 nodel pyramid, and the p = 2 schedule certifies on the
/// lifted instance.
#[test]
fn readme_mpp_session_replays() {
    let readme = include_str!("../README.md");
    let section = readme
        .split("## Multiprocessor pebbling")
        .nth(1)
        .expect("README must keep a 'Multiprocessor pebbling' section");
    let section = section.split("\n## ").next().unwrap();

    // the documented session
    let pyr = red_blue_pebbling::gadgets::pyramid::build(3);
    let inst = Instance::new(pyr.dag.clone(), 3, CostModel::nodel());
    let classic = registry::solve("exact", &inst).expect("feasible");
    let one = registry::solve("exact@mpp:1", &inst).expect("feasible");
    let two = registry::solve("exact@mpp:2", &inst).expect("feasible");
    assert_eq!(
        one.scaled_cost(&inst),
        classic.scaled_cost(&inst),
        "p = 1 must be the classic game"
    );
    assert!(
        two.scaled_cost(&inst) < one.scaled_cost(&inst),
        "the README claims a second processor strictly helps here"
    );

    // the p = 2 schedule replays on the engine of the lifted instance
    let lifted = inst.with_procs(2);
    let report = engine::simulate(&lifted, &two.trace).expect("p = 2 trace must validate");
    assert_eq!(report.cost, two.cost);

    // every `@mpp` spec the section's grammar table lists parses and
    // solves the same instance (the move-semantics table has no
    // backticked spec column, so filtering on `@mpp` selects exactly
    // the grammar rows)
    let specs: Vec<&str> = section
        .lines()
        .filter_map(|l| l.trim().strip_prefix("| `"))
        .map(|rest| rest.split('`').next().unwrap())
        .filter(|s| s.contains("@mpp"))
        .collect();
    assert_eq!(specs.len(), 2, "grammar table lists both mpp families");
    for spec in specs {
        registry::solve(spec, &inst)
            .unwrap_or_else(|e| panic!("README mpp spec `{spec}` failed: {e}"));
    }
}

/// Public-API smoke test for the "Scaling" section: replays the
/// documented matmul(16) session verbatim — the stitched `coarse`
/// schedule certifies at the claimed cost and carries a fractional
/// lower bound strictly above the trivial one — then parses the
/// section's grammar table and solves every `coarse` row on a small
/// butterfly, pinning `coarse:1/exact` to the exact optimum.
#[test]
fn readme_scaling_session_replays() {
    let readme = include_str!("../README.md");
    let section = readme
        .split("## Scaling")
        .nth(1)
        .expect("README must keep a 'Scaling' section");
    let section = section.split("\n## ").next().unwrap();

    // the documented session
    let mm = red_blue_pebbling::workloads::matmul::build(16);
    let inst = Instance::new(mm.dag.clone(), 4, CostModel::oneshot())
        .with_source_convention(SourceConvention::InitiallyBlue)
        .with_sink_convention(SinkConvention::RequireBlue);
    let sol = registry::solve("coarse", &inst).expect("coarse scales to matmul(16)");
    let cert = certify::certify(&inst, &sol.trace).expect("stitched trace certifies");
    assert!(cert.matches(&sol.cost));
    let Quality::UpperBound { lower_bound } = sol.quality else {
        panic!("8448 nodes will not hit the bound exactly")
    };
    let eps = inst.model().epsilon();
    assert!(lower_bound <= sol.cost.scaled(eps));
    assert!(
        lower_bound > bounds::trivial_lower_bound(&inst).scaled(eps),
        "the README claims a strictly stronger bound here"
    );

    // every `coarse` spec in the section's grammar table parses and
    // solves a small butterfly, and K = 1 with an exact inner solver
    // reproduces the exact optimum
    let specs: Vec<&str> = section
        .lines()
        .filter_map(|l| l.trim().strip_prefix("| `"))
        .map(|rest| rest.split('`').next().unwrap())
        .filter(|s| s.starts_with("coarse"))
        .collect();
    assert_eq!(specs.len(), 4, "grammar table lists the coarse variants");
    let small = red_blue_pebbling::workloads::fft::build(2);
    let small_inst = Instance::new(small.dag.clone(), 4, CostModel::oneshot());
    let opt = registry::solve("exact", &small_inst).expect("feasible");
    assert!(opt.is_optimal());
    for spec in specs {
        let sol = registry::solve(spec, &small_inst)
            .unwrap_or_else(|e| panic!("README scaling spec `{spec}` failed: {e}"));
        let report = engine::simulate(&small_inst, &sol.trace)
            .unwrap_or_else(|e| panic!("spec `{spec}` produced an invalid trace: {e:?}"));
        assert_eq!(report.cost, sol.cost);
        assert!(sol.scaled_cost(&small_inst) >= opt.scaled_cost(&small_inst));
        if spec == "coarse:1/exact" {
            assert!(sol.is_optimal(), "pure delegation must stay exact");
            assert_eq!(sol.scaled_cost(&small_inst), opt.scaled_cost(&small_inst));
        }
    }
}

/// Public-API smoke test for the "Serving" section: the exact protocol
/// session printed in the README is fed to an in-process server, and
/// the solution document it streams back must replay on the engine.
/// If the wire grammar drifts from the README, this fails here.
#[test]
fn readme_serving_protocol_round_trip() {
    use red_blue_pebbling::service::{serve_session, Server, ServerConfig};
    use std::io::BufReader;

    let readme = include_str!("../README.md");
    let section = readme
        .split("## Serving")
        .nth(1)
        .expect("README must keep a 'Serving' section");
    let section = section.split("\n## ").next().unwrap();
    let session = section
        .split("```text\n")
        .nth(1)
        .and_then(|s| s.split("```").next())
        .expect("the Serving section shows a protocol session in a text fence");
    assert!(
        session.starts_with("submit job-1 "),
        "README session must open with a submit: {session:?}"
    );

    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServerConfig::default()
    });
    let mut response = Vec::new();
    serve_session(BufReader::new(session.as_bytes()), &mut response, &server)
        .expect("session runs clean");
    server.shutdown();
    let response = String::from_utf8(response).unwrap();

    assert!(
        !response.contains("protocol-error") && !response.contains("failed job-1"),
        "README session must be accepted verbatim:\n{response}"
    );
    assert!(response.contains("queued job-1"));
    assert!(response.contains("result job-1 spec=exact cached=false"));
    assert!(response.trim_end().ends_with("bye"));

    // the streamed solution document replays on the engine at its
    // advertised cost, against the instance embedded in the session
    let instance_doc: String = {
        let start = session.find("instance v1").unwrap();
        let end = session[start..].find("\nend").unwrap() + start + "\nend\n".len();
        session[start..end].to_string()
    };
    let inst = red_blue_pebbling::core::io::parse_instance(&instance_doc).expect("valid instance");
    let sol_start = response.find("solution v1").unwrap();
    let sol_end = response[sol_start..].find("\nend").unwrap() + sol_start + "\nend".len();
    let wire = red_blue_pebbling::solvers::wire::parse_solution(&response[sol_start..sol_end])
        .expect("valid solution document");
    assert_eq!(wire.spec, "exact");
    let report = engine::simulate(&inst, &wire.solution.trace).expect("trace must replay");
    assert_eq!(report.cost, wire.solution.cost);
}

/// Every model variant solves the quickstart diamond and validates.
#[test]
fn quickstart_all_models_validate() {
    let mut b = DagBuilder::new(5);
    b.add_edge(0, 2);
    b.add_edge(1, 2);
    b.add_edge(1, 3);
    b.add_edge(2, 4);
    b.add_edge(3, 4);
    let dag = b.build().expect("acyclic");
    for kind in ModelKind::ALL {
        let model = CostModel::of_kind(kind);
        let inst = Instance::new(dag.clone(), 3, model);
        let opt = registry::solve("exact", &inst).expect("feasible");
        let report = engine::simulate(&inst, &opt.trace).expect("valid");
        assert_eq!(report.cost, opt.cost, "engine disagrees under {kind:?}");
    }
}

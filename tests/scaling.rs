//! End-to-end scaling suite: the hierarchical `coarse[:K]` solver and
//! the fractional lower-bound engine on workloads far beyond the exact
//! frontier (matmul(16) = 8448 nodes, fft(64) = 448 nodes), plus the
//! brackets that tie them back to certified optima on the small
//! perf-snapshot matrix.

use rbp_bench::perf_snapshot;
use red_blue_pebbling::core::{
    bounds, certify, CostModel, Instance, ModelKind, SinkConvention, SourceConvention,
};
use red_blue_pebbling::solvers::{registry, Quality};
use red_blue_pebbling::workloads::{fft, matmul};

/// The Hong–Kung regime every scaling cell runs under: inputs start in
/// slow memory, outputs must end there.
fn hong_kung(dag: red_blue_pebbling::graph::Dag, r: usize, kind: ModelKind) -> Instance {
    Instance::new(dag, r, CostModel::of_kind(kind))
        .with_source_convention(SourceConvention::InitiallyBlue)
        .with_sink_convention(SinkConvention::RequireBlue)
}

/// `coarse` solves matmul(16) and fft(64) end-to-end: the stitched
/// trace is accepted by the independent certifier at exactly the
/// claimed cost, and the reported `UpperBound` carries a lower bound no
/// worse than the trivial one.
#[test]
fn coarse_solves_the_large_workloads_end_to_end() {
    let large: [(&str, red_blue_pebbling::graph::Dag); 2] = [
        ("matmul16", matmul::build(16).dag),
        ("fft64", fft::build(6).dag),
    ];
    for (name, dag) in large {
        for kind in [ModelKind::Oneshot, ModelKind::NoDel] {
            let inst = hong_kung(dag.clone(), 4, kind);
            assert!(inst.is_feasible());
            let sol = registry::solve("coarse", &inst)
                .unwrap_or_else(|e| panic!("coarse failed on {name}/{kind:?}: {e}"));
            let cert = certify::certify(&inst, &sol.trace)
                .unwrap_or_else(|e| panic!("certifier rejected {name}/{kind:?}: {e}"));
            assert!(
                cert.matches(&sol.cost),
                "{name}/{kind:?}: certified (t={}, c={}) != claimed (t={}, c={})",
                cert.transfers,
                cert.computes,
                sol.cost.transfers,
                sol.cost.computes
            );
            let trivial = inst.scaled_cost(&bounds::trivial_lower_bound(&inst));
            match sol.quality {
                Quality::UpperBound { lower_bound } => {
                    assert!(lower_bound >= trivial, "{name}/{kind:?}: bound regressed");
                    assert!(lower_bound <= sol.scaled_cost(&inst));
                }
                Quality::Optimal => {} // cost met the bound exactly — even better
                Quality::Infeasible => panic!("{name}/{kind:?}: reported Infeasible"),
            }
        }
    }
}

/// The fractional relaxation strictly beats the trivial bound on at
/// least half of the large scaling cells (on base/oneshot it proves
/// positive transfers where trivial proves zero).
#[test]
fn fractional_bound_beats_trivial_on_the_large_cells() {
    let cells = perf_snapshot::coarse_cells();
    assert!(!cells.is_empty());
    let mut strictly_better = 0usize;
    for c in &cells {
        let trivial = c
            .instance
            .scaled_cost(&bounds::trivial_lower_bound(&c.instance));
        let best = c
            .instance
            .scaled_cost(&bounds::best_lower_bound(&c.instance));
        assert!(
            best >= trivial,
            "{}/{}: best_lower_bound regressed below trivial",
            c.workload,
            c.model
        );
        if best > trivial {
            strictly_better += 1;
        }
    }
    assert!(
        2 * strictly_better >= cells.len(),
        "fractional bound strictly better on only {strictly_better}/{} large cells",
        cells.len()
    );
}

/// On the exact-tractable perf matrix (≤ 20 nodes), every coarse
/// partitioning brackets the certified optimum from above, and `K = 1`
/// with an exact inner solver pins it exactly.
#[test]
fn coarse_brackets_exact_on_the_perf_matrix() {
    let mut checked = 0usize;
    for c in perf_snapshot::cells() {
        if c.instance.dag().n() > 20 {
            continue;
        }
        let exact = registry::solve("exact", &c.instance).expect("perf cells are feasible");
        if !exact.is_optimal() {
            continue;
        }
        let opt = exact.scaled_cost(&c.instance);
        for spec in ["coarse:2", "coarse:3", "coarse:4/greedy"] {
            let sol = registry::solve(spec, &c.instance)
                .unwrap_or_else(|e| panic!("{spec} failed on {}/{}: {e}", c.workload, c.model));
            let cost = sol.scaled_cost(&c.instance);
            assert!(
                cost >= opt,
                "{spec} undercut the optimum on {}/{}: {cost} < {opt}",
                c.workload,
                c.model
            );
            let cert = certify::certify(&c.instance, &sol.trace).expect("stitched trace certifies");
            assert!(cert.matches(&sol.cost));
        }
        let pinned =
            registry::solve("coarse:1/exact", &c.instance).expect("K=1 delegates to exact");
        assert!(pinned.is_optimal(), "coarse:1/exact must stay exact");
        assert_eq!(
            pinned.scaled_cost(&c.instance),
            opt,
            "coarse:1/exact != exact on {}/{}",
            c.workload,
            c.model
        );
        checked += 1;
    }
    assert!(
        checked >= 9,
        "perf matrix shrank: only {checked} cells checked"
    );
}

/// `best_lower_bound` dominates `trivial_lower_bound` component-wise on
/// the full recorded perf matrix — routing every call site through the
/// fractional engine never weakens a bound anyone relied on.
#[test]
fn bounds_never_decrease_vs_trivial_on_the_full_matrix() {
    let mut cells = perf_snapshot::all_cells();
    cells.extend(perf_snapshot::coarse_cells());
    for c in &cells {
        let trivial = bounds::trivial_lower_bound(&c.instance);
        let best = bounds::best_lower_bound(&c.instance);
        assert!(
            best.transfers >= trivial.transfers && best.computes >= trivial.computes,
            "{}/{}: best {best:?} below trivial {trivial:?}",
            c.workload,
            c.model
        );
    }
}

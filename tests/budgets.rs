//! Budget semantics of the unified solver API: deadlines, expansion
//! caps, and cooperative cancellation must degrade exact solves to
//! valid incumbents — never to invalid traces, and never to errors when
//! an incumbent exists.

use red_blue_pebbling::prelude::*;
use red_blue_pebbling::workloads::stencil;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The grid(5)/base cell at tight R: the exact search interns hundreds
/// of thousands of states (seconds of work), so every budget below
/// trips mid-search.
fn hard_instance() -> Instance {
    Instance::new(stencil::build(5, 2, 1).dag.clone(), 4, CostModel::base())
}

/// A deadline-expired exact solve returns the greedy-seeded incumbent
/// as `UpperBound`, with `lower_bound` populated from
/// `bounds::trivial_lower_bound`, and a trace that replays through the
/// validating engine.
#[test]
fn deadline_expired_exact_returns_greedy_seeded_upper_bound() {
    let inst = hard_instance();
    let ctx = SolveCtx::new(Budget::none().with_deadline(Duration::from_millis(40)));
    let sol = registry::solver("exact")
        .unwrap()
        .solve(&inst, &ctx)
        .expect("deadline must degrade, not error");

    let eps = inst.model().epsilon();
    match sol.quality {
        Quality::UpperBound { lower_bound } => {
            assert_eq!(
                lower_bound,
                bounds::trivial_lower_bound(&inst).scaled(eps),
                "lower_bound comes from the structural bound"
            );
            assert!(lower_bound <= sol.scaled_cost(&inst));
        }
        Quality::Optimal => panic!("a 40 ms deadline cannot settle this search"),
        Quality::Infeasible => panic!("instance is feasible"),
    }
    // the incumbent is a real schedule: replays exactly, within budget R
    let report = engine::simulate(&inst, &sol.trace).expect("incumbent trace must validate");
    assert_eq!(report.cost, sol.cost);
    assert!(report.peak_red <= inst.red_limit());
    // and it is never worse than the best greedy (it IS the greedy seed,
    // or a goal the search found below it)
    let portfolio = registry::solve("portfolio", &inst).unwrap();
    assert!(sol.scaled_cost(&inst) <= portfolio.scaled_cost(&inst));
}

/// The expansion cap is honored within one poll quantum — a
/// deterministic variant of the deadline test.
#[test]
fn expansion_cap_is_honored_within_a_quantum() {
    let inst = hard_instance();
    let cap = 5_000u64;
    let ctx = SolveCtx::new(Budget::none().with_max_expansions(cap));
    let sol = registry::solver("exact")
        .unwrap()
        .solve(&inst, &ctx)
        .expect("cap must degrade, not error");
    assert!(!sol.is_optimal());
    if let Some(expanded) = sol.states_expanded() {
        // polls happen every 256 expansions; the overshoot is at most
        // one quantum
        assert!(
            expanded <= cap + 256,
            "expanded {expanded} states against a cap of {cap}"
        );
    }
    assert!(engine::simulate(&inst, &sol.trace).is_ok());
}

/// The cancellation flag stops the parallel solver within one batch
/// quantum: after the flag flips, the solve returns promptly with the
/// incumbent instead of running the remaining (multi-second) search.
#[test]
fn cancellation_stops_the_parallel_solver_within_one_quantum() {
    let inst = hard_instance();
    let flag = Arc::new(AtomicBool::new(false));
    let ctx = SolveCtx::new(Budget::none().with_cancel(Arc::clone(&flag)));

    let canceller = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            flag.store(true, Ordering::SeqCst);
            Instant::now()
        })
    };
    let solver = registry::solver("exact-parallel:2").unwrap();
    let sol = solver.solve(&inst, &ctx).expect("cancel must degrade");
    let returned_at = Instant::now();
    let cancelled_at = canceller.join().unwrap();

    // workers poll once per ~64-pop quantum; seconds of slack absorbs
    // debug-build slowness while still catching a search that ignored
    // the flag (it would run for minutes)
    assert!(
        returned_at.duration_since(cancelled_at) < Duration::from_secs(20),
        "parallel solve ignored the cancellation flag"
    );
    assert!(!sol.is_optimal());
    assert!(engine::simulate(&inst, &sol.trace).is_ok());
}

/// A pre-set cancellation flag degrades immediately to the greedy seed —
/// and the same budget with seeding disabled is `Interrupted`.
#[test]
fn pre_cancelled_solves_degrade_or_interrupt() {
    let inst = hard_instance();
    let flag = Arc::new(AtomicBool::new(true));
    let ctx = SolveCtx::new(Budget::none().with_cancel(Arc::clone(&flag)));

    let sol = registry::solver("exact-parallel:2")
        .unwrap()
        .solve(&inst, &ctx)
        .expect("seeded solve degrades");
    assert_eq!(sol.stats.get("degraded"), Some(1));
    assert!(engine::simulate(&inst, &sol.trace).is_ok());

    let res = registry::solver("exact:unseeded")
        .unwrap()
        .solve(&inst, &ctx);
    assert_eq!(res.unwrap_err(), SolveError::Interrupted);
}

/// Budgets never change answers, only completeness: a budget loose
/// enough to finish returns the same optimum as the unbudgeted solve.
#[test]
fn loose_budgets_do_not_perturb_optima() {
    let mut b = DagBuilder::new(6);
    b.add_edge(0, 2);
    b.add_edge(1, 2);
    b.add_edge(2, 3);
    b.add_edge(2, 4);
    b.add_edge(3, 5);
    b.add_edge(4, 5);
    let inst = Instance::new(b.build().unwrap(), 3, CostModel::oneshot());
    let eps = inst.model().epsilon();
    let free = registry::solve("exact", &inst).unwrap();
    let ctx = SolveCtx::new(Budget::none().with_deadline(Duration::from_secs(60)));
    for spec in ["exact", "exact-parallel:2"] {
        let budgeted = registry::solver(spec).unwrap().solve(&inst, &ctx).unwrap();
        assert!(budgeted.is_optimal(), "{spec} finished well inside budget");
        assert_eq!(budgeted.cost.scaled(eps), free.cost.scaled(eps), "{spec}");
    }
}

//! End-to-end verification of the paper's theorems, spanning all crates:
//! reductions are compiled, solved with real solvers, decoded, and
//! compared against classical ground truth.

use red_blue_pebbling::core::{engine, CostModel, ModelKind};
use red_blue_pebbling::gadgets::{cd, grid, pyramid, tradeoff};
use red_blue_pebbling::graph::Graph;
use red_blue_pebbling::prelude::*;
use red_blue_pebbling::reductions::{hampath, reduction_hampath, reduction_vc, vertex_cover};
use red_blue_pebbling::solvers::best_order;

/// Theorem 2 (NP-hardness): the reduction decides Hamiltonicity in every
/// model, on a randomized battery with known ground truth.
#[test]
fn theorem2_reduction_decides_hamiltonicity() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(2020);
    let mut graphs: Vec<Graph> = vec![
        Graph::path(5),
        Graph::star(5),
        Graph::cycle(5),
        Graph::complete_bipartite(2, 3),
    ];
    for _ in 0..4 {
        graphs.push(Graph::gnp(5, 0.45, &mut rng));
    }
    for g in graphs {
        let truth = hampath::has_hamiltonian_path(&g);
        let red = reduction_hampath::encode(g);
        for kind in ModelKind::ALL {
            let decided = red
                .decides_hamiltonian(CostModel::of_kind(kind))
                .expect("reduction solvable");
            assert_eq!(decided, truth, "Theorem 2 broken in {kind}");
        }
    }
}

/// Theorem 2, certificate side: a threshold-achieving pebbling decodes to
/// an actual Hamiltonian path.
#[test]
fn theorem2_certificates_are_real_paths() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..5 {
        let g = hampath::planted_instance(7, 4, &mut rng);
        let red = reduction_hampath::encode(g);
        let model = CostModel::oneshot();
        let (cost, order) = red.solve_dp(model);
        assert_eq!(cost, red.scaled_schedule_threshold(model));
        let path = red.decode(&order).expect("planted instance is Hamiltonian");
        assert!(hampath::is_hamiltonian_path(&red.graph, &path));
    }
}

/// Theorem 3 (inapproximability mechanism): optimal pebblings of the VC
/// construction decode to minimum vertex covers.
#[test]
fn theorem3_pebbling_measures_vertex_cover() {
    for g in [
        Graph::path(4),
        Graph::cycle(4),
        Graph::star(4),
        Graph::complete(4),
    ] {
        let n = g.n();
        let truth = vertex_cover::min_vertex_cover(&g).len();
        let red = reduction_vc::encode(g, n * n + n);
        let inst = red.instance(CostModel::oneshot());
        let best = best_order(&red.grouped, &inst).expect("solvable");
        let decoded = red.decode(&best.order);
        assert!(red.graph.is_vertex_cover(&decoded));
        assert_eq!(decoded.len(), truth);
        // the cost is dominated by the 2k' toll
        assert!(best.cost.transfers >= red.commons_toll(truth));
        assert!(best.cost.transfers <= red.commons_toll(truth) + 4 * (n as u64).pow(2));
    }
}

/// Theorem 4 (greedy inefficiency): every greedy rule lands far from the
/// optimum on the grid, and the red-driven rules follow the exact trap.
#[test]
fn theorem4_grid_defeats_greedy() {
    let g = grid::build(grid::GridConfig {
        ell: 3,
        k_prime: 16,
        mis: 2,
    });
    let inst = g.instance(CostModel::oneshot());
    let best = best_order(&g.grouped, &inst).expect("solvable");
    for rule in SelectionRule::ALL {
        let rep = GreedySolver::with_config(GreedyConfig {
            rule,
            eviction: EvictionPolicy::MinUses,
        })
        .solve_default(&inst)
        .expect("feasible");
        assert!(
            rep.cost.transfers > 3 * best.cost.transfers,
            "rule {rule} came within 3x of optimal"
        );
    }
}

/// Section 5: the tradeoff staircase equals the exact optimum at every
/// feasible budget (small instance, full range).
#[test]
fn section5_staircase_is_exactly_optimal() {
    let t = tradeoff::build(3, 4);
    for r in t.min_r()..=t.free_r() {
        let inst = Instance::new(t.dag.clone(), r, CostModel::oneshot());
        let opt = registry::solve("exact", &inst).expect("feasible");
        assert_eq!(opt.cost.transfers, t.expected_oneshot_cost(r));
    }
}

/// Section 3 gadget claims: the CD ladder's cliff dwarfs the pyramid's.
#[test]
fn section3_cd_beats_pyramid_as_a_gadget() {
    let h = 5;
    let ladder = cd::build(2, h);
    let starve = |dag: &red_blue_pebbling::graph::Dag, r: usize| {
        registry::solve(
            "exact",
            &Instance::new(dag.clone(), r, CostModel::oneshot()),
        )
        .unwrap()
        .cost
        .transfers
    };
    let ladder_cliff = starve(&ladder.dag, ladder.free_budget() - 1);
    let p = pyramid::build(h);
    let pyramid_cliff = starve(&p.dag, h);
    assert!(ladder_cliff >= 2 * (h as u64 - 1));
    assert!(pyramid_cliff <= 2);
    assert!(ladder_cliff > 4 * pyramid_cliff);
}

/// Lemma 1: optimal traces respect the O(Δ·n) length bound in the three
/// NP models, across instance families.
#[test]
fn lemma1_optimal_traces_are_short() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..5 {
        let dag = red_blue_pebbling::graph::generate::gnp_dag(9, 0.35, 3, &mut rng);
        let r = dag.max_indegree() + 1;
        for kind in [ModelKind::Oneshot, ModelKind::NoDel, ModelKind::CompCost] {
            let inst = Instance::new(dag.clone(), r, CostModel::of_kind(kind));
            let opt = registry::solve("exact", &inst).expect("feasible");
            let bound = bounds::lemma1_length_bound(&inst).expect("NP models have bounds");
            assert!(
                (opt.trace.len() as u64) <= bound,
                "optimal trace length {} exceeds Lemma-1 bound {bound} in {kind}",
                opt.trace.len()
            );
        }
    }
}

/// Every solver's reported cost is reproduced by the validating engine —
/// the repository-wide invariant.
#[test]
fn every_solver_cost_is_engine_validated() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(123);
    let dag = red_blue_pebbling::graph::generate::layered(3, 4, 2, &mut rng);
    let inst = Instance::new(dag, 4, CostModel::oneshot());

    let exact = registry::solve("exact", &inst).unwrap();
    assert_eq!(
        engine::simulate(&inst, &exact.trace).unwrap().cost,
        exact.cost
    );

    let greedy = registry::solve("greedy", &inst).unwrap();
    assert_eq!(
        engine::simulate(&inst, &greedy.trace).unwrap().cost,
        greedy.cost
    );

    let port = registry::solve("portfolio", &inst).unwrap();
    assert_eq!(
        engine::simulate(&inst, &port.trace).unwrap().cost,
        port.cost
    );

    // ordering: exact <= portfolio <= greedy-single <= canonical
    let eps = inst.model().epsilon();
    let canonical = bounds::canonical_cost(&inst);
    assert!(exact.cost.scaled(eps) <= port.cost.scaled(eps));
    assert!(port.cost.scaled(eps) <= greedy.cost.scaled(eps));
    assert!(greedy.cost.scaled(eps) <= canonical.scaled(eps) + 1);
}

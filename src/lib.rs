//! # red-blue-pebbling
//!
//! A complete implementation of red-blue pebble games after Papp &
//! Wattenhofer, *On the Hardness of Red-Blue Pebble Games* (SPAA 2020):
//! the four model variants (base, oneshot, nodel, compcost), a validating
//! game engine, exact and greedy solvers, every gadget and hardness
//! construction from the paper, the classical-problem solvers used to
//! verify the reductions, and realistic HPC workload generators.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `rbp-graph` | DAG substrate, bitsets, generators |
//! | [`core`] | `rbp-core` | models, costs, states, engine, bounds |
//! | [`solvers`] | `rbp-solvers` | exact, greedy, visit-order, sweeps |
//! | [`gadgets`] | `rbp-gadgets` | H2C, CD ladder, pyramid, tradeoff chain, greedy grid |
//! | [`reductions`] | `rbp-reductions` | Hamiltonian Path & Vertex Cover reductions + solvers |
//! | [`workloads`] | `rbp-workloads` | matmul, FFT, stencil, trees |
//! | [`service`] | `rbp-service` | batch-solve server, memoization cache, wire protocol |
//! | [`verify`] | `rbp-verify` | differential fuzz harness, shrinker, counterexamples |
//!
//! ## Quickstart
//! ```
//! use red_blue_pebbling::prelude::*;
//!
//! // a 2x2 matrix-multiplication DAG, cache of 4 values
//! let mm = red_blue_pebbling::workloads::matmul::build(2);
//! let inst = Instance::new(mm.dag.clone(), 4, CostModel::oneshot());
//!
//! // optimal I/O cost and a certified schedule, through the registry
//! let opt = registry::solve("exact", &inst).unwrap();
//! assert!(opt.is_optimal());
//! let report = engine::simulate(&inst, &opt.trace).unwrap();
//! assert_eq!(report.cost, opt.cost);
//! ```
//!
//! Solvers are selected by spec string (`"exact"`, `"exact-parallel:4"`,
//! `"greedy:most-red-inputs/lru"`, `"beam:256"`, `"portfolio"`) through
//! [`solvers::registry`], or constructed directly and used through the
//! [`solvers::api::Solver`] trait with budgets and progress observers —
//! see the `solver_registry` example.

pub use rbp_core as core;
pub use rbp_gadgets as gadgets;
pub use rbp_graph as graph;
pub use rbp_reductions as reductions;
pub use rbp_service as service;
pub use rbp_solvers as solvers;
pub use rbp_verify as verify;
pub use rbp_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use rbp_core::{
        bounds, certify, engine, Cost, CostModel, Instance, ModelKind, Move, Pebbling, Ratio,
        SinkConvention, SourceConvention, State,
    };
    pub use rbp_graph::{Dag, DagBuilder, Graph, NodeId};
    pub use rbp_solvers::api::{
        Budget, ExactSolver, GreedySolver, Progress, Quality, Solution, SolveCtx, Solver, Stats,
    };
    pub use rbp_solvers::{
        registry, sweep_r, EvictionPolicy, GreedyConfig, SelectionRule, SolveError,
    };
}
